#!/usr/bin/env python3
"""Design-space tour: baselines vs speculative adders, plus RTL export.

Characterises every baseline architecture and the three speculative
circuits at one bitwidth, prints a ranked table, sweeps the speculation
window to show the accuracy/delay trade-off, and exports the VLSA
datapath to VHDL and Verilog (what the paper's C++ generator produced).

Run:  python examples/design_space.py [bitwidth]
"""

import os
import sys

from repro.adders import ADDER_BUILDERS, build_adder
from repro.analysis import aca_error_probability, choose_window
from repro.circuit import (
    UMC180,
    analyze_area,
    analyze_timing,
    to_verilog,
    to_vhdl,
)
from repro.core import build_aca, build_error_detector, build_vlsa_datapath
from repro.reporting import Table


def main():
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    window = choose_window(width)

    table = Table(f"Design space at {width} bits (umc180 model)",
                  ["design", "delay [ns]", "area", "gates", "P(error)"])
    entries = []
    for name in sorted(ADDER_BUILDERS):
        c = build_adder(name, width)
        entries.append((name, c, 0.0))
    entries.append((f"ACA w={window}", build_aca(width, window),
                    aca_error_probability(width, window)))
    entries.append((f"error detector w={window}",
                    build_error_detector(width, window), 0.0))

    rows = []
    for name, circuit, p_err in entries:
        delay = analyze_timing(circuit, UMC180).critical_delay
        area = analyze_area(circuit, UMC180).total
        rows.append((delay, name, area, circuit.gate_count(), p_err))
    for delay, name, area, gates, p_err in sorted(rows):
        table.add_row(name, round(delay, 3), round(area, 0), gates,
                      f"{p_err:.1e}" if p_err else "exact")
    print(table.render())

    # Window sweep: how the trade-off moves.
    sweep = Table(f"\nSpeculation window sweep at {width} bits",
                  ["window", "ACA delay [ns]", "P(error)"])
    for w in sorted({2, 4, 8, window, 2 * window}):
        aca = build_aca(width, w)
        sweep.add_row(w,
                      round(analyze_timing(aca, UMC180).critical_delay, 3),
                      f"{aca_error_probability(width, w):.2e}")
    print(sweep.render())

    # RTL export, like the paper's VHDL generator.
    vlsa = build_vlsa_datapath(width, window)
    out_dir = os.path.dirname(__file__)
    for ext, render in (("vhd", to_vhdl), ("v", to_verilog)):
        path = os.path.join(out_dir, f"vlsa{width}.{ext}")
        with open(path, "w", encoding="utf-8") as f:
            f.write(render(vlsa))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
