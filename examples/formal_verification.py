#!/usr/bin/env python3
"""Formal tools tour: equivalence proofs, model counting, ATPG.

Shows the verification story a hardware team would expect around a
speculative adder:

1. *prove* (not sample) that the recovery path is an exact adder,
2. *prove* that a small-window ACA is NOT exact, and exhibit a
   counterexample,
3. count exactly how many input pairs raise the error flag and compare
   with the analytic probability,
4. generate a complete manufacturing test set with untestability proofs.

Run:  python examples/formal_verification.py
"""

from fractions import Fraction

from repro.adders import build_ripple_adder
from repro.analysis import detector_flag_probability
from repro.circuit import generate_tests, prove_equivalent
from repro.circuit.bdd import (
    Bdd,
    build_output_bdds,
    count_satisfying,
    interleaved_order,
)
from repro.core import build_aca, build_error_detector, build_recovery_adder

WIDTH = 16
WINDOW = 5


def main():
    golden = build_ripple_adder(WIDTH)

    # 1. Recovery is exact — proven over all 2^32 input pairs.
    recovery = build_recovery_adder(WIDTH, WINDOW)
    ok, reason = prove_equivalent(golden, recovery,
                                  outputs=["sum", "cout"])
    print(f"recovery == exact adder : {'PROVEN' if ok else reason}")

    # 2. The raw ACA is not exact; extract a concrete counterexample.
    aca = build_aca(WIDTH, WINDOW)
    ok, reason = prove_equivalent(golden, aca, outputs=["sum"])
    print(f"ACA == exact adder      : "
          f"{'PROVEN (unexpected!)' if ok else f'refuted ({reason})'}")
    order = interleaved_order(golden)
    manager = Bdd(len(order))
    g_bdds = build_output_bdds(golden, manager, order)
    order_aca = {nid_a: order[nid_g]
                 for name in golden.inputs
                 for nid_g, nid_a in zip(golden.inputs[name],
                                         aca.inputs[name])}
    a_bdds = build_output_bdds(aca, manager, order_aca)
    miter = Bdd.FALSE
    for fg, fa in zip(g_bdds["sum"], a_bdds["sum"]):
        miter = manager.apply_or(miter, manager.apply_xor(fg, fa))
    assign = manager.any_sat(miter)
    a = sum(assign[order[nid]] << i
            for i, nid in enumerate(golden.inputs["a"]))
    b = sum(assign[order[nid]] << i
            for i, nid in enumerate(golden.inputs["b"]))
    print(f"  counterexample: {a:#06x} + {b:#06x} "
          f"(exact {a + b & 0xFFFF:#06x})")

    # 3. Exact count of flagged inputs vs the analytic probability.
    detector = build_error_detector(WIDTH, WINDOW)
    flagged = count_satisfying(detector, "err")
    total = 1 << (2 * WIDTH)
    print(f"\nflagged input pairs     : {flagged} / {total} "
          f"= {Fraction(flagged, total)}")
    print(f"analytic P(flag)        : "
          f"{detector_flag_probability(WIDTH, WINDOW):.10f}")
    print(f"exact count / total     : {flagged / total:.10f}")

    # 4. Manufacturing tests for the ACA.
    result = generate_tests(build_aca(8, 3), random_vectors=32, seed=0)
    print(f"\nATPG on 8-bit ACA       : {result.detected}/"
          f"{result.total_faults} faults, "
          f"{len(result.vectors)} vectors, "
          f"{len(result.untestable)} proven untestable "
          f"(coverage {result.coverage:.1%})")


if __name__ == "__main__":
    main()
