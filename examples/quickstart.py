#!/usr/bin/env python3
"""Quickstart: build an ACA, watch it speculate, detect and recover.

Walks through the paper's core ideas on a 64-bit adder:

1. pick the 99.99 % speculation window from the exact run-length theory,
2. build the Almost Correct Adder and add a few numbers,
3. construct an input with a long carry chain and watch it fail,
4. see the error detector flag it and the recovery path fix it,
5. compare delay/area against the best traditional adder.

Run:  python examples/quickstart.py
"""

from repro import build_aca, choose_window
from repro.adders import build_best_traditional
from repro.analysis import aca_error_probability, expected_latency_cycles
from repro.circuit import UMC180, analyze_area, analyze_timing, simulate_bus_ints
from repro.core import build_vlsa_datapath, characterize_vlsa
from repro.mc import longest_propagate_run

WIDTH = 64


def main():
    window = choose_window(WIDTH)  # paper: bound(99.99%) + 1
    print(f"{WIDTH}-bit ACA with window {window} "
          f"(P(error) = {aca_error_probability(WIDTH, window):.2e})")

    aca = build_aca(WIDTH, window)
    print(f"built: {aca.summary()}")

    # --- ordinary additions are exact -------------------------------
    for a, b in [(123456789, 987654321), (2**40, 3**25), (0, 0)]:
        out = simulate_bus_ints(aca, {"a": a, "b": b})
        status = "OK " if out["sum"] == (a + b) % 2**WIDTH else "BAD"
        print(f"  {status} {a} + {b} -> {out['sum']}")

    # --- the failure mode: a long propagate chain --------------------
    a = (1 << (WIDTH - 1)) - 1          # 0111...1
    b = 1                               # carries must ripple end to end
    run = longest_propagate_run(a, b, WIDTH)
    out = simulate_bus_ints(aca, {"a": a, "b": b})
    print(f"\nadversarial input: propagate run of {run} bits")
    print(f"  speculative sum: {out['sum']:#x}  (exact: {(a + b):#x})")

    # --- the VLSA catches and corrects it ----------------------------
    vlsa = build_vlsa_datapath(WIDTH, window)
    out = simulate_bus_ints(vlsa, {"a": a, "b": b})
    print(f"  VLSA error flag: {out['err']}, "
          f"recovered sum: {out['sum_exact']:#x}")

    # --- and it is still the faster design on average ----------------
    # Clock sizing follows the paper: the ACA and the detector are
    # characterised as standalone circuits (Fig. 8), the clock is the
    # slower of the two, and errors cost one extra cycle.
    from repro.core import build_error_detector

    best = build_best_traditional(WIDTH, UMC180)
    d_aca = analyze_timing(aca, UMC180).critical_delay
    d_det = analyze_timing(build_error_detector(WIDTH, window),
                           UMC180).critical_delay
    clock = max(d_aca, d_det)
    p_err = aca_error_probability(WIDTH, window)
    avg = clock * expected_latency_cycles(p_err)
    print(f"\ntraditional ({best.name}): {best.delay:.3f} ns")
    print(f"ACA delay: {d_aca:.3f} ns   detector delay: {d_det:.3f} ns")
    print(f"VLSA average time/add:      {avg:.3f} ns "
          f"({best.delay / avg:.2f}x speedup)")
    print(f"ACA area vs traditional:    "
          f"{analyze_area(aca, UMC180).total / best.area:.2f}x")


if __name__ == "__main__":
    main()
