"""Experiment drivers: structure and headline shapes (small configs)."""

import pytest

from repro import experiments as ex


def test_table1_rows_and_monotonic_bounds():
    t = ex.table1(bitwidths=(16, 64, 256), probabilities=(0.99, 0.9999))
    assert len(t.rows) == 3
    assert "bitwidth" in t.headers[0]
    text = t.render()
    assert "Table 1" in text and "99" in text


def test_theorem1_table():
    t = ex.theorem1(max_k=5, mc_trials=300)
    assert len(t.rows) == 5
    # closed form column exact
    assert t.rows[0][1] == "2"
    assert t.rows[4][1] == "62"


def test_schilling_table():
    t = ex.schilling_table(bitwidths=(16, 64))
    assert len(t.rows) == 2


@pytest.fixture(scope="module")
def fig8_small():
    # The paper's Fig. 8 starts at 64 bits: below that the 99.99% window
    # is about half the operand width and speculation cannot win.
    return ex.fig8_rows(bitwidths=(64, 128, 256))


def test_fig8_shapes(fig8_small):
    rows = fig8_small
    assert [r.width for r in rows] == [64, 128, 256]
    for r in rows:
        # Who wins: ACA fastest, recovery slowest-or-close, detector cheap.
        assert r.aca_delay < r.traditional_delay
        assert r.detect_delay < r.traditional_delay
        assert r.recovery_delay > r.aca_delay
        # Area ordering: ripple < detector < ACA < recovery.
        assert r.ripple_area < r.aca_area
        assert r.detect_area < r.aca_area
        assert r.recovery_area > r.aca_area
        assert r.vlsa_avg_speedup > 1.0
    # Speedup grows with bitwidth.
    speedups = [r.aca_speedup for r in rows]
    assert speedups == sorted(speedups)


def test_fig8_tables_render(fig8_small):
    delay, area, chart_d, chart_a = ex.fig8_tables(rows=fig8_small)
    assert len(delay.rows) == 3 and len(area.rows) == 3
    assert "legend" in chart_d and "legend" in chart_a
    assert "ACA" in delay.render()


def test_fig7_trace_small():
    table, diagram = ex.fig7_trace(width=32, operations=2000, seed=1)
    rendered = table.render()
    assert "avg latency" in rendered
    assert "CLK" in diagram
    # The scripted second operand pair must stall.
    assert " S " in diagram


def test_error_rate_table():
    t = ex.error_rate_table(bitwidths=(32, 64), samples=2000)
    assert len(t.rows) == 2
    for row in t.rows:
        p_err = float(row[2])
        p_flag = float(row[3])
        assert p_err <= p_flag
        assert p_flag < 1e-3


def test_sharing_ablation():
    t = ex.sharing_ablation(bitwidths=(32, 64))
    assert len(t.rows) == 2
    for row in t.rows:
        assert float(row[4]) > 1.0  # naive strictly bigger


def test_window_sweep():
    t = ex.window_sweep(width=64, windows=(4, 8, 18, 32))
    assert len(t.rows) == 4
    p_errs = [float(r[1]) for r in t.rows]
    assert p_errs == sorted(p_errs, reverse=True)  # wider window, fewer errors


def test_crypto_attack_experiment():
    t = ex.crypto_attack_experiment(corpus_bytes=1024, key_bits=5,
                                    window=8, seed=3)
    assert len(t.rows) == 2
    # Both adders recover the key (rank 1).
    assert t.rows[0][1] == "1"
    assert t.rows[1][1] == "1"
    # ACA row claims a speedup > 1.
    assert float(t.rows[1][-1]) > 1.0


def test_future_work_table_small():
    t = ex.future_work_table(mul_width=12, multiop_width=32, operands=4,
                             samples=100)
    assert len(t.rows) == 4
    # Exact rows claim speedup 1.0; note column structure intact.
    assert float(t.rows[0][2]) == 1.0
    assert float(t.rows[2][2]) == 1.0


def test_fault_table_small():
    t = ex.fault_table(width=8, window=3, vectors=64)
    cov = {row[0]: float(row[3]) for row in t.rows}
    assert cov["all outputs"] >= cov["err flag only"]
    assert len(t.rows) == 4


def test_processor_table_small():
    t = ex.processor_table(iterations=20)
    assert t.rows[0][1] == t.rows[1][1]  # identical results
    assert int(t.rows[1][3]) <= int(t.rows[0][3])


def test_dsp_table_small():
    t = ex.dsp_table(samples=120, windows=(12, 24))
    assert len(t.rows) == 2
    assert all(row[4] == "yes" for row in t.rows)


def test_processor_table_on_wide_datapath():
    """Regression: the loop's -1 immediate must match the CPU width or a
    64-bit datapath never terminates."""
    t = ex.processor_table(width=64, iterations=10)
    assert t.rows[0][1] == t.rows[1][1]
