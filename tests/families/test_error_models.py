"""Analytic error models vs brute force, and the verify-registry path."""

import pytest

from repro.families.base import family_names, get_family
from repro.verify.differential import run_exhaustive

from ..conftest import nightly


@pytest.mark.parametrize("width", (2, 3, 4))
@pytest.mark.parametrize("name", family_names())
def test_exact_rates_match_brute_force(name, width):
    fam = get_family(name)
    for knob in range(1, width + 1):
        params = fam.resolve_params(width, window=knob)
        model = fam.error_model(width, **params)
        functional = fam.functional(width, **params)
        errors = flags = 0
        for a in range(1 << width):
            for b in range(1 << width):
                if not functional.is_correct(a, b):
                    errors += 1
                if functional.flags_error(a, b):
                    flags += 1
        total = 1 << (2 * width)
        # Exact Fractions: the counts must match as integers.
        assert model.exact_error_rate * total == errors, params
        assert model.exact_flag_rate * total == flags, params
        # The detector may be conservative but never misses.
        assert flags >= errors


@pytest.mark.parametrize("name", family_names())
def test_flag_rate_dominates_error_rate(name):
    fam = get_family(name)
    for width in (8, 16):
        for knob in (1, 2, 4, width):
            params = fam.resolve_params(width, window=knob)
            model = fam.error_model(width, **params)
            assert 0 <= model.error_rate <= model.flag_rate <= 1
            assert model.expected_latency_cycles(3) == pytest.approx(
                1.0 + 3 * model.flag_rate)


@pytest.mark.parametrize("name", family_names())
def test_error_distribution_mass_and_rate(name):
    fam = get_family(name)
    width = 8
    params = fam.resolve_params(width, window=2)
    dist = fam.error_distribution(width, **params)
    if dist is None:
        pytest.skip(f"{name} has no tractable error distribution")
    model = fam.error_model(width, **params)
    # P(error distance != 0) must equal the model's exact error rate.
    assert dist.error_rate(exact=True) == model.exact_error_rate


@pytest.mark.parametrize("name", family_names())
def test_verify_registry_exhaustive_per_family(name):
    report = run_exhaustive((3,), family=name)
    assert report.ok, report.describe()
    assert report.family == name
    assert report.exhaustive
    assert all(cell.family == name for cell in report.exhaustive)


@nightly
@pytest.mark.parametrize("name", family_names())
def test_verify_registry_exhaustive_wider_nightly(name):
    report = run_exhaustive((4, 5), family=name)
    assert report.ok, report.describe()
