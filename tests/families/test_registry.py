"""The family registry: listing, parameter resolution, design kinds."""

import pytest

from repro.analysis import choose_window
from repro.families.base import (FamilyError, family_names, get_family,
                                 resolve_params)
from repro.generator import DESIGN_KINDS


def test_family_names_sorted_and_complete():
    names = family_names()
    assert list(names) == sorted(names)
    assert {"aca", "blockspec", "cesa"} <= set(names)
    # Deterministic across calls.
    assert family_names() == names


def test_get_family_unknown_raises():
    with pytest.raises(FamilyError):
        get_family("carry-pigeon")


@pytest.mark.parametrize("name", family_names())
def test_resolve_params_roundtrip(name):
    fam = get_family(name)
    width = 32
    params = fam.resolve_params(width)
    assert params == fam.normalize_params(width, params)
    # The bare --window knob sets the primary parameter.
    forced = fam.resolve_params(width, window=3)
    assert fam.primary_value(width, forced) == 3
    # module-level helper agrees with the method
    assert resolve_params(name, width, 3) == forced


def test_aca_default_window_is_the_analysis_choice():
    # Satellite: window defaulting lives in ONE place — the registry —
    # and that place delegates to the paper's choose_window rule.
    for width in (8, 16, 32, 64, 128):
        params = resolve_params("aca", width, None)
        # choose_window may exceed the width at small n; the registry
        # clamps every parameter into [1, width].
        assert params["window"] == min(choose_window(width), width)


@pytest.mark.parametrize("name", family_names())
def test_params_clamped_to_width(name):
    fam = get_family(name)
    params = fam.resolve_params(8, window=99)
    assert all(1 <= v <= 8 for v in params.values())
    with pytest.raises(FamilyError):
        fam.resolve_params(8, window=0)
    with pytest.raises(FamilyError):
        fam.resolve_params(0)


def test_resolve_params_rejects_unknown_override():
    with pytest.raises(FamilyError):
        get_family("aca").resolve_params(16, frobnicate=3)


def test_design_kinds_sorted_and_include_families():
    kinds = list(DESIGN_KINDS)
    assert kinds == sorted(kinds)
    for name in family_names():
        assert name in DESIGN_KINDS
        assert f"{name}_r" in DESIGN_KINDS


@pytest.mark.parametrize("name", family_names())
def test_design_kind_builders_emit_contracted_outputs(name):
    spec = DESIGN_KINDS[name](8, None)
    assert {"sum", "cout"} <= set(spec.outputs)
    datapath = DESIGN_KINDS[f"{name}_r"](8, None)
    assert {"sum", "cout", "err", "sum_exact",
            "cout_exact"} <= set(datapath.outputs)


def test_error_model_is_memoized():
    fam = get_family("aca")
    assert fam.error_model(24, window=5) is fam.error_model(24, window=5)
    # Distinct parameters get distinct models.
    assert fam.error_model(24, window=5) is not fam.error_model(24, window=6)
