"""CLI surface of the family zoo: --family knobs, pareto verb, export."""

import json

import pytest

from repro.cli import main
from repro.families.base import family_names
from repro.generator import DESIGN_KINDS


@pytest.fixture(autouse=True)
def _results_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


@pytest.mark.parametrize("family", family_names())
def test_verify_family_flag(capsys, family):
    assert main(["verify", "--width", "8", "--family", family,
                 "--window", "2", "--vectors", "300",
                 "--impls", "functional,kernel,engine:numpy",
                 "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert f"family={family}" in out


def test_pareto_command(capsys, _results_tmpdir):
    assert main(["pareto", "--widths", "4,8"]) == 0
    out = capsys.readouterr().out
    assert "pareto" in out.lower()
    assert (_results_tmpdir / "pareto_families.json").exists()
    assert (_results_tmpdir / "pareto_families.md").exists()
    payload = json.loads(
        (_results_tmpdir / "pareto_families.json").read_text())
    assert {p["family"] for p in payload["points"]} == set(family_names())


def test_pareto_no_save(capsys, _results_tmpdir):
    assert main(["pareto", "--widths", "4", "--families", "cesa",
                 "--no-save"]) == 0
    assert not (_results_tmpdir / "pareto_families.json").exists()


@pytest.mark.parametrize("kind", ["cesa", "cesa_r", "blockspec",
                                  "blockspec_r", "aca_r"])
def test_export_family_kinds(tmp_path, kind):
    assert main(["export", kind, "--width", "8",
                 "--out", str(tmp_path / "rtl")]) == 0
    written = list((tmp_path / "rtl").iterdir())
    suffixes = {p.suffix for p in written}
    assert {".vhd", ".v", ".json"} <= suffixes


def test_export_help_lists_sorted_kinds(capsys):
    with pytest.raises(SystemExit) as err:
        main(["export", "--help"])
    assert err.value.code == 0
    out = capsys.readouterr().out
    for kind in ("cesa", "cesa_r", "blockspec", "blockspec_r"):
        assert kind in out
    # listing is the deterministically sorted DESIGN_KINDS table
    assert ", ".join(sorted(DESIGN_KINDS)) in out.replace("\n", " ")


def test_verify_help_lists_families(capsys):
    with pytest.raises(SystemExit) as err:
        main(["verify", "--help"])
    assert err.value.code == 0
    out = capsys.readouterr().out
    for name in family_names():
        assert name in out
