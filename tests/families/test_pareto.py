"""The cross-family delay/area/error-rate Pareto study."""

import json

from repro.families.base import family_names
from repro.families.pareto import (run_pareto_study, write_pareto_report)


def test_pareto_study_structure():
    report = run_pareto_study(widths=(4, 8))
    assert report.widths == [4, 8] or list(report.widths) == [4, 8]
    assert report.points
    assert report.baselines
    # Every registered family contributes points at every width.
    seen = {(p.family, p.width) for p in report.points}
    for name in family_names():
        for width in (4, 8):
            assert (name, width) in seen
    # Every width names a best exact baseline.
    assert set(report.best_baseline) == {4, 8}


def test_pareto_front_is_nondominated():
    report = run_pareto_study(widths=(8,))
    points = [p for p in report.points if p.width == 8]
    front = [p for p in points if p.on_front]
    assert front
    for p in front:
        for q in points:
            if q is p:
                continue
            strictly_better = (q.avg_time <= p.avg_time
                               and q.area <= p.area
                               and q.error_rate <= p.error_rate
                               and (q.avg_time < p.avg_time
                                    or q.area < p.area
                                    or q.error_rate < p.error_rate))
            assert not strictly_better, (p.label, q.label)


def test_pareto_point_sanity():
    report = run_pareto_study(widths=(8,), families=("aca",))
    for p in report.points:
        assert p.family == "aca"
        assert 0.0 <= p.error_rate <= p.flag_rate <= 1.0
        assert p.gates > 0 and p.area > 0
        assert p.expected_cycles >= 1.0
        assert p.avg_time > 0


def test_write_pareto_report(tmp_path):
    report = run_pareto_study(widths=(4,))
    written = write_pareto_report(report, out_dir=str(tmp_path))
    names = {p.rsplit("/", 1)[-1] for p in written}
    assert "pareto_families.json" in names
    assert "pareto_families.md" in names
    payload = json.loads((tmp_path / "pareto_families.json").read_text())
    assert payload["points"]
    assert payload["widths"] == [4]
    md = (tmp_path / "pareto_families.md").read_text()
    for name in family_names():
        assert name in md
