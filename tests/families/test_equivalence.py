"""Exhaustive gate-level / functional / kernel equivalence per family.

The family contract (ISSUE acceptance): for every registered family the
full datapath circuit, the big-int functional model and the vectorised
numpy kernel agree bit-for-bit — speculative result, detector flag and
recovered output — over *every* operand pair at small widths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import execute_ints
from repro.families.base import family_names, get_family

from ..conftest import nightly

TIER1_WIDTHS = (2, 3, 4, 5)
NIGHTLY_WIDTHS = (6, 7, 8)


def _all_pairs(width):
    n = 1 << width
    a = [x for x in range(n) for _ in range(n)]
    b = list(range(n)) * n
    return a, b


def _check_family_exhaustive(name, width):
    fam = get_family(name)
    params = fam.resolve_params(width)
    model = fam.functional(width, **params)
    circuit = fam.build_circuit(width, **params)
    kernel = fam.numpy_kernel(width, **params)
    a_vals, b_vals = _all_pairs(width)
    out = execute_ints(circuit, {"a": a_vals, "b": b_vals},
                       backend="numpy")
    batch = None
    if kernel is not None:
        batch = kernel(np.asarray(a_vals, dtype=np.uint64),
                       np.asarray(b_vals, dtype=np.uint64))
    mask = (1 << width) - 1
    for i, (a, b) in enumerate(zip(a_vals, b_vals)):
        spec_sum, spec_cout = model.add(a, b)
        flag = model.flags_error(a, b)
        total = a + b
        # circuit vs functional model
        assert out["sum"][i] == spec_sum
        assert out["cout"][i] == spec_cout
        assert bool(out["err"][i]) == flag
        # recovered output is exact
        assert out["sum_exact"][i] == total & mask
        assert out["cout_exact"][i] == total >> width
        # wrong speculation implies a raised flag (no silent errors)
        if (spec_sum, spec_cout) != (total & mask, total >> width):
            assert flag
        # numpy kernel vs functional model
        if batch is not None:
            assert int(batch.spec_sums[i]) == spec_sum
            assert int(batch.spec_couts[i]) == spec_cout
            assert bool(batch.flags[i]) == flag
            assert int(batch.exact_sums[i]) == total & mask
            assert int(batch.exact_couts[i]) == total >> width
            assert bool(batch.spec_errors[i]) == (
                (spec_sum, spec_cout) != (total & mask, total >> width))


@pytest.mark.parametrize("width", TIER1_WIDTHS)
@pytest.mark.parametrize("name", family_names())
def test_exhaustive_equivalence(name, width):
    _check_family_exhaustive(name, width)


@nightly
@pytest.mark.parametrize("width", NIGHTLY_WIDTHS)
@pytest.mark.parametrize("name", family_names())
def test_exhaustive_equivalence_nightly(name, width):
    _check_family_exhaustive(name, width)


# ----------------------------------------------------------------------
# Property: recovery is exact for every family, width and knob setting.
# ----------------------------------------------------------------------
_CIRCUITS = {}


def _datapath(name, width, knob):
    key = (name, width, knob)
    if key not in _CIRCUITS:
        fam = get_family(name)
        params = fam.resolve_params(width, window=knob)
        _CIRCUITS[key] = fam.build_circuit(width, **params)
    return _CIRCUITS[key]


@settings(deadline=None, max_examples=60)
@given(data=st.data(),
       name=st.sampled_from(family_names()),
       width=st.sampled_from((4, 6, 9, 12)),
       knob=st.integers(min_value=1, max_value=12))
def test_recovered_output_always_exact(data, name, width, knob):
    circuit = _datapath(name, width, min(knob, width))
    mask = (1 << width) - 1
    a = data.draw(st.integers(min_value=0, max_value=mask))
    b = data.draw(st.integers(min_value=0, max_value=mask))
    out = execute_ints(circuit, {"a": [a], "b": [b]})
    total = a + b
    assert out["sum_exact"][0] == total & mask
    assert out["cout_exact"][0] == total >> width
    # The err output is the recovery trigger: whenever speculation was
    # wrong it must have fired.
    if out["sum"][0] != total & mask or out["cout"][0] != total >> width:
        assert out["err"][0] == 1
