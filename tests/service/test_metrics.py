"""Metrics registry: counters, gauges, histograms, exports."""

import pytest

from repro.service import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    c = Counter("ops_total")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_peak():
    g = Gauge("depth")
    g.set(3)
    g.set(7)
    g.set(2)
    assert g.value == 2
    assert g.peak == 7
    g.inc(10)
    assert g.value == 12
    assert g.peak == 12
    g.dec(5)
    assert g.value == 7
    assert g.peak == 12  # dec never lowers the peak


def test_histogram_exact_aggregates():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    assert h.count == 4
    assert h.sum == pytest.approx(10.0)
    assert h.mean == pytest.approx(2.5)
    assert h.min == 1.0
    assert h.max == 4.0


def test_histogram_bulk_record_and_quantiles():
    h = Histogram("cycles")
    h.record(1, count=9900)
    h.record(2, count=100)
    assert h.count == 10000
    assert h.mean == pytest.approx(1.01)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(0.99) in (1.0, 2.0)
    assert h.quantile(1.0) == 2.0


def test_histogram_reservoir_bounded_and_deterministic():
    h1 = Histogram("x", reservoir_size=64, seed=7)
    h2 = Histogram("x", reservoir_size=64, seed=7)
    for i in range(10000):
        h1.record(i % 97)
        h2.record(i % 97)
    assert len(h1._reservoir) == 64
    # Same seed, same stream -> identical quantiles (reproducibility).
    for q in (0.5, 0.95, 0.99):
        assert h1.quantile(q) == h2.quantile(q)


def test_histogram_bulk_record_is_bounded_by_reservoir():
    """Bulk recording must do O(reservoir) work, not O(count): ten
    million samples per call would hang the old per-sample loop."""
    h = Histogram("lat", reservoir_size=128, seed=3)
    h.record(1.0, count=10_000_000)
    h.record(2.0, count=10_000_000)
    assert h.count == 20_000_000
    assert h.sum == pytest.approx(30_000_000.0)
    assert h.mean == pytest.approx(1.5)
    assert len(h._reservoir) == 128
    # The second block replaces each slot with marginal probability
    # 1/2, so both values are represented in the reservoir.
    assert set(h._reservoir) == {1.0, 2.0}
    assert h.quantile(0.05) == 1.0
    assert h.quantile(0.95) == 2.0


def test_histogram_validation():
    h = Histogram("x")
    with pytest.raises(ValueError):
        h.record(1.0, count=0)
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("x", reservoir_size=0)


def test_registry_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    c1 = reg.counter("ops_total")
    c2 = reg.counter("ops_total")
    assert c1 is c2
    with pytest.raises(TypeError):
        reg.gauge("ops_total")
    assert reg.get("missing") is None
    assert reg.names() == ["ops_total"]


def test_json_export_shapes():
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.gauge("b").set(1.5)
    reg.histogram("c").record(2.0)
    out = reg.to_json()
    assert out["a"] == {"type": "counter", "value": 3}
    assert out["b"] == {"type": "gauge", "value": 1.5, "peak": 1.5}
    assert out["c"]["count"] == 1
    assert set(out["c"]) >= {"p50", "p95", "p99", "mean", "sum"}


def test_prometheus_export_format():
    reg = MetricsRegistry(namespace="vlsa")
    reg.counter("ops_total", help="ops served").inc(5)
    reg.gauge("queue_depth").set(2)
    reg.histogram("latency_seconds").record(0.25)
    text = reg.to_prometheus()
    assert "# HELP vlsa_ops_total ops served" in text
    assert "# TYPE vlsa_ops_total counter" in text
    assert "vlsa_ops_total 5" in text
    assert "vlsa_queue_depth 2" in text
    assert "vlsa_queue_depth_peak 2" in text
    assert "# TYPE vlsa_latency_seconds summary" in text
    assert 'vlsa_latency_seconds{quantile="0.5"} 0.25' in text
    assert "vlsa_latency_seconds_count 1" in text


# ----------------------------------------------------------------------
# Cross-process merging (the cluster's aggregation primitive)
# ----------------------------------------------------------------------
def test_counter_merge_adds_values():
    a = Counter("ops_total")
    b = Counter("ops_total")
    a.inc(10)
    b.inc(32)
    a.merge(b)
    assert a.value == 42
    with pytest.raises(ValueError):
        a.merge_state({"value": -1})


def test_gauge_merge_adds_values_and_takes_peak():
    a = Gauge("depth")
    b = Gauge("depth")
    a.set(3)        # a: value 3, peak 3
    b.set(9)
    b.set(2)        # b: value 2, peak 9
    a.merge(b)
    assert a.value == 5
    assert a.peak == 9


def test_histogram_merge_exact_aggregates():
    a = Histogram("lat")
    b = Histogram("lat")
    for v in (1.0, 2.0):
        a.record(v)
    for v in (10.0, 20.0, 30.0):
        b.record(v)
    a.merge(b)
    assert a.count == 5
    assert a.sum == pytest.approx(63.0)
    assert a.min == 1.0
    assert a.max == 30.0


def test_histogram_merge_reservoir_stays_bounded_and_representative():
    a = Histogram("lat", reservoir_size=128, seed=1)
    b = Histogram("lat", reservoir_size=128, seed=2)
    for _ in range(5000):
        a.record(1.0)
    for _ in range(5000):
        b.record(100.0)
    a.merge(b)
    assert len(a._reservoir) <= 128
    # Both sides contributed equally; the subsample must reflect that
    # (weighted reservoir merge, not concatenate-and-truncate).
    ones = sum(1 for v in a._reservoir if v == 1.0)
    assert 0 < ones < len(a._reservoir)
    assert a.quantile(0.5) in (1.0, 100.0)


def test_registry_merge_snapshot_roundtrip():
    src = MetricsRegistry()
    src.counter("ops_total", "ops").inc(7)
    src.gauge("depth", "queue").set(3)
    src.histogram("lat", "latency").record(2.0, count=4)
    dst = MetricsRegistry()
    dst.counter("ops_total", "ops").inc(5)
    dst.merge_snapshot(src.state())
    assert dst.counter("ops_total").value == 12
    assert dst.gauge("depth").value == 3
    assert dst.histogram("lat").count == 4
    # Merging is additive and repeatable.
    dst.merge_snapshot(src.state())
    assert dst.counter("ops_total").value == 19


def test_registry_merge_rejects_kind_mismatch():
    src = MetricsRegistry()
    src.counter("x", "a counter").inc()
    dst = MetricsRegistry()
    dst.gauge("x", "a gauge").set(1)
    with pytest.raises(TypeError):
        dst.merge_snapshot(src.state())


def test_registry_merge_registries_directly():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("ops_total").inc(1)
    b.counter("ops_total").inc(2)
    b.counter("only_b_total").inc(9)
    a.merge(b)
    assert a.counter("ops_total").value == 3
    assert a.counter("only_b_total").value == 9


def test_registry_merge_snapshot_empty_is_noop():
    reg = MetricsRegistry()
    reg.counter("ops_total").inc(4)
    reg.merge_snapshot({})
    assert reg.counter("ops_total").value == 4
    assert reg.names() == ["ops_total"]


def test_registry_merge_snapshot_partial_subset():
    src = MetricsRegistry()
    src.counter("ops_total").inc(3)
    src.gauge("depth").set(7)
    dst = MetricsRegistry()
    dst.counter("ops_total").inc(1)
    snap = src.state()
    del snap["depth"]  # a worker that never registered the gauge
    dst.merge_snapshot(snap)
    assert dst.counter("ops_total").value == 4
    assert dst.get("depth") is None


def test_registry_merge_snapshot_unknown_kind_rejected():
    reg = MetricsRegistry()
    with pytest.raises(KeyError):
        reg.merge_snapshot({"weird": {"kind": "summary", "help": "",
                                      "state": {"value": 1}}})


def test_registry_merge_snapshot_malformed_entry_rejected():
    reg = MetricsRegistry()
    with pytest.raises(KeyError):
        reg.merge_snapshot({"ops_total": {"help": "no kind field"}})


def test_registry_merge_snapshot_negative_counter_rejected():
    reg = MetricsRegistry()
    reg.counter("ops_total").inc(2)
    with pytest.raises(ValueError):
        reg.merge_snapshot({"ops_total": {"kind": "counter", "help": "",
                                          "state": {"value": -5}}})
    # The failed merge must not have corrupted the counter.
    assert reg.counter("ops_total").value == 2
