"""VlsaService live reconfiguration and batch observers."""

import asyncio
import random

import pytest

from repro.service import VlsaService
from repro.service.executor import VlsaBatchExecutor

WIDTH = 32
MASK = (1 << WIDTH) - 1


def run(coro):
    return asyncio.run(coro)


def rand_pairs(n, seed=0):
    rng = random.Random(seed)
    return [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
            for _ in range(n)]


def test_reconfigure_updates_window_family_and_batch_cap():
    async def main():
        async with VlsaService(width=WIDTH, window=4) as svc:
            applied = svc.reconfigure(window=16, family="blockspec",
                                      max_batch_ops=128)
            assert applied["family"] == "blockspec"
            assert svc.family == "blockspec"
            assert svc.max_batch_ops == 128
            assert svc.m_reconfigs.value == 1
            assert svc.describe()["family"] == "blockspec"
            resp = await svc.submit(MASK, 1)
            assert resp.sum_out == 0 and resp.cout == 1
    run(main())


def test_mid_stream_reconfigure_is_bit_exact():
    """Sums across a config change equal the exact adder's."""
    pairs = rand_pairs(600, seed=3)
    want = VlsaBatchExecutor(WIDTH, window=WIDTH).execute(pairs)

    async def main():
        async with VlsaService(width=WIDTH, window=4) as svc:
            first = await svc.submit_batch(pairs[:300])
            svc.reconfigure(window=12, family="aca")
            second = await svc.submit_batch(pairs[300:])
            assert first.sums + second.sums == want.sums
            assert first.couts + second.couts == want.couts
    run(main())


def test_reconfigure_rejects_bad_args():
    from repro.families.base import FamilyError

    async def main():
        async with VlsaService(width=WIDTH) as svc:
            with pytest.raises(ValueError):
                svc.reconfigure(max_batch_ops=0)
            with pytest.raises(FamilyError):
                svc.reconfigure(family="not-a-family")
            # Failed reconfigure attempts must not corrupt the service.
            resp = await svc.submit(1, 2)
            assert resp.sum_out == 3
    run(main())


def test_batch_observer_sees_every_batch_and_can_be_removed():
    seen = []

    def observer(pairs, outcome):
        seen.append((len(pairs), outcome.stall_count))

    async def main():
        async with VlsaService(width=WIDTH, window=4) as svc:
            svc.add_batch_observer(observer)
            await svc.submit_batch([(1, 2), (MASK, 1)])
            assert len(seen) == 1
            assert seen[0][0] == 2
            svc.remove_batch_observer(observer)
            await svc.submit_batch([(3, 4)])
            assert len(seen) == 1
    run(main())


def test_observer_exception_is_contained_and_counted():
    def bad_observer(pairs, outcome):
        raise RuntimeError("boom")

    async def main():
        async with VlsaService(width=WIDTH) as svc:
            svc.add_batch_observer(bad_observer)
            resp = await svc.submit_batch([(1, 2)])
            assert resp.sums == [3]  # request unaffected
            assert svc.m_observer_errors.value == 1
    run(main())


def test_analytic_stall_probability_tracks_family():
    async def main():
        async with VlsaService(width=64, window=8) as svc:
            aca = svc.analytic_stall_probability
            svc.reconfigure(family="blockspec", window=8)
            assert svc.analytic_stall_probability != aca
    run(main())
