"""Batch executor: numpy kernel vs bigint fallback vs VlsaMachine."""

import pytest

from repro.arch import VlsaMachine
from repro.mc.fastsim import detector_flag
from repro.service import VlsaBatchExecutor


def _pairs(rng, width, count):
    return [(rng.getrandbits(width), rng.getrandbits(width))
            for _ in range(count)]


@pytest.mark.parametrize("width,window", [(8, 2), (16, 4), (32, 8),
                                          (63, 10), (64, 12), (16, 16)])
def test_numpy_matches_bigint(rng, width, window):
    pairs = _pairs(rng, width, 400)
    np_out = VlsaBatchExecutor(width, window=window,
                               backend="numpy").execute(pairs)
    bi_out = VlsaBatchExecutor(width, window=window,
                               backend="bigint").execute(pairs)
    assert np_out.sums == bi_out.sums
    assert np_out.couts == bi_out.couts
    assert np_out.stalled == bi_out.stalled
    assert np_out.spec_errors == bi_out.spec_errors
    assert np_out.latencies == bi_out.latencies
    assert np_out.cycles == bi_out.cycles


def test_sums_always_exact(rng):
    width = 64
    executor = VlsaBatchExecutor(width, window=6)  # frequent stalls
    pairs = _pairs(rng, width, 300)
    out = executor.execute(pairs)
    mask = (1 << width) - 1
    for (a, b), s, c in zip(pairs, out.sums, out.couts):
        assert s == (a + b) & mask
        assert c == (a + b) >> width
    assert out.stall_count > 0


def test_matches_vlsa_machine_semantics(rng):
    """Per-op latency/stall accounting must equal the Fig. 6 machine."""
    width, window, recovery = 16, 3, 2
    pairs = _pairs(rng, width, 250)
    machine = VlsaMachine(width, window=window, recovery_cycles=recovery)
    trace = machine.run(pairs)
    out = VlsaBatchExecutor(width, window=window,
                            recovery_cycles=recovery).execute(pairs)
    assert out.stalled == [r.stalled for r in trace.results]
    assert out.latencies == [r.latency_cycles for r in trace.results]
    assert out.sums == [r.sum_out for r in trace.results]
    assert out.couts == [r.cout for r in trace.results]
    assert out.cycles == trace.total_cycles


def test_stall_iff_detector_fires(rng):
    width, window = 32, 5
    pairs = _pairs(rng, width, 200)
    out = VlsaBatchExecutor(width, window=window).execute(pairs)
    for (a, b), stalled in zip(pairs, out.stalled):
        assert stalled == detector_flag(a, b, width, window)


def test_spec_errors_subset_of_stalls(rng):
    out = VlsaBatchExecutor(16, window=3).execute(_pairs(rng, 16, 500))
    for err, stall in zip(out.spec_errors, out.stalled):
        assert not err or stall  # detector never misses a real error
    assert out.spec_error_count <= out.stall_count


def test_wide_bigint_fallback(rng):
    """Widths beyond a machine word run on the bigint path."""
    executor = VlsaBatchExecutor(128, window=8)
    assert executor.backend == "bigint"
    pairs = _pairs(rng, 128, 50)
    out = executor.execute(pairs)
    mask = (1 << 128) - 1
    for (a, b), s in zip(pairs, out.sums):
        assert s == (a + b) & mask


def test_empty_batch():
    out = VlsaBatchExecutor(64).execute([])
    assert out.size == 0
    assert out.cycles == 0


def test_configuration_validation():
    with pytest.raises(ValueError):
        VlsaBatchExecutor(0)
    with pytest.raises(ValueError):
        VlsaBatchExecutor(64, recovery_cycles=0)
    with pytest.raises(ValueError):
        VlsaBatchExecutor(64, backend="sharded")
    with pytest.raises(ValueError):
        VlsaBatchExecutor(128, backend="numpy")


def test_window_equal_width_matches_reference_detector(rng):
    """window == width: speculation is exact, but the detector still
    fires on an all-propagate word — both backends must agree."""
    width = 8
    pairs = _pairs(rng, width, 200) + [(0, 255), (0x0F, 0xF0), (255, 255)]
    np_out = VlsaBatchExecutor(width, window=width,
                               backend="numpy").execute(pairs)
    bi_out = VlsaBatchExecutor(width, window=width,
                               backend="bigint").execute(pairs)
    assert np_out.stalled == bi_out.stalled
    assert np_out.spec_errors == bi_out.spec_errors
    assert np_out.latencies == bi_out.latencies
    assert np_out.cycles == bi_out.cycles
    # (0, 255) and (0x0F, 0xF0) propagate across the whole word.
    assert np_out.stalled[-3:] == [True, True, False]
    # The bit-0-anchored window covers every bit, so speculation is
    # never actually wrong at window == width.
    assert np_out.spec_error_count == 0


def test_out_of_range_operands_masked_consistently():
    """Negative / >= 2^64 operands must not raise out of the numpy
    kernel; both backends mask to the operand width."""
    width = 16
    mask = (1 << width) - 1
    pairs = [(1 << 200, -1), ((1 << 64) + 3, 4), (5, 7)]
    np_out = VlsaBatchExecutor(width, window=4,
                               backend="numpy").execute(pairs)
    bi_out = VlsaBatchExecutor(width, window=4,
                               backend="bigint").execute(pairs)
    assert np_out.sums == bi_out.sums
    assert np_out.couts == bi_out.couts
    assert np_out.stalled == bi_out.stalled
    assert np_out.sums == [((a & mask) + (b & mask)) & mask
                           for a, b in pairs]


def test_executor_counters_flow_into_context():
    from repro.engine import RunContext

    ctx = RunContext(seed=0)
    executor = VlsaBatchExecutor(16, window=3, ctx=ctx)
    executor.execute([(0x7FFF, 1), (1, 2)])
    assert ctx.counters["service_ops"] == 2
    assert ctx.counters["service_stalls"] == 1
    assert ctx.counters["service_batches"] == 1
    assert "service_execute" in ctx.phases
