"""Service soak test: chaos injection with full metrics reconciliation.

A seeded storm of concurrent clients drives the service while a chaos
task randomly stalls the accelerator (holding executor batches and
replaying them later) so cancellations and timeouts land mid-flight.
Afterwards every delivered response is validated against the
differential-verification reference oracle and the metrics registry is
reconciled against the client-side tallies — no request may be lost or
double-counted, and served work must balance the cycle ledger exactly.
"""

import asyncio
import random

import pytest

from repro.service import (
    RequestTimeoutError,
    ServiceOverloadedError,
    VlsaService,
)
from repro.testing import TEST_SEED, nightly_enabled
from repro.verify.differential import _reference
from repro.verify.vectors import pair_stream

WIDTH, WINDOW, RECOVERY = 32, 4, 3

#: Client deadline and chaos stall length.  The stall is 10x the
#: deadline so a request admitted during a stall reliably times out
#: even on a heavily loaded CI box.
TIMEOUT_S = 0.005
STALL_S = 0.05


def run(coro):
    return asyncio.run(coro)


class Tally:
    """Client-side ground truth the registry must reconcile against."""

    def __init__(self):
        self.ok = 0
        self.timeouts = 0
        self.cancelled = 0
        self.rejected = 0
        self.responses = []  # (a, b, AddResponse)


async def _client(svc, tally, pairs, rng, cancel_p, timeout_p):
    for a, b in pairs:
        action = rng.random()
        try:
            if action < cancel_p:
                task = asyncio.ensure_future(svc.submit(a, b))
                # Let the submission reach its first await (so it was
                # admitted), sometimes longer (so it may even resolve),
                # then cancel from outside.
                await asyncio.sleep(0)
                if rng.random() < 0.5:
                    await asyncio.sleep(0)
                task.cancel()
                try:
                    resp = await task
                    tally.ok += 1  # resolved before the cancel landed
                    tally.responses.append((a, b, resp))
                except asyncio.CancelledError:
                    tally.cancelled += 1
            elif action < cancel_p + timeout_p:
                try:
                    resp = await svc.submit(a, b, timeout=TIMEOUT_S)
                    tally.ok += 1
                    tally.responses.append((a, b, resp))
                except RequestTimeoutError:
                    tally.timeouts += 1
            else:
                resp = await svc.submit(a, b)
                tally.ok += 1
                tally.responses.append((a, b, resp))
        except ServiceOverloadedError:
            tally.rejected += 1


async def _chaos_stalls(svc, stop, rng, stall_p=0.5):
    """Randomly take the accelerator away and bring it back.

    While stalled, executor batches are buffered unresolved (deadlines
    expire, cancels land mid-flight); on recovery the held batches are
    replayed through the real path, which skips abandoned futures.
    """
    while not stop.is_set():
        if rng.random() < stall_p:
            real = svc._execute_batch
            held = []
            svc._execute_batch = held.append
            try:
                await asyncio.sleep(STALL_S)
            finally:
                svc._execute_batch = real
                for batch in held:
                    real(batch)
        await asyncio.sleep(0.001)


def _soak(n_clients=8, pairs_per_client=60, cancel_p=0.2, timeout_p=0.2,
          queue_capacity=64, chaos=True, seed=TEST_SEED):
    async def main():
        svc = VlsaService(width=WIDTH, window=WINDOW,
                          recovery_cycles=RECOVERY,
                          queue_capacity=queue_capacity, max_batch_ops=64)
        tally = Tally()
        chunks = list(pair_stream("uniform", WIDTH, WINDOW,
                                  n_clients * pairs_per_client, seed=seed))
        flat = [p for chunk in chunks for p in chunk]
        async with svc:
            stop = asyncio.Event()
            chaos_task = (asyncio.ensure_future(
                _chaos_stalls(svc, stop, random.Random(seed ^ 0x5A)))
                if chaos else None)
            clients = []
            for i in range(n_clients):
                lo = i * pairs_per_client
                clients.append(_client(
                    svc, tally, flat[lo:lo + pairs_per_client],
                    random.Random(seed + i), cancel_p, timeout_p))
            await asyncio.gather(*clients)
            if chaos_task is not None:
                stop.set()
                await chaos_task
        return svc, tally

    return run(main())


def _reconcile(svc, tally):
    # Conservation: every admitted request resolved exactly one way.
    assert (svc.m_requests.value
            == tally.ok + tally.timeouts + tally.cancelled), (
        "admitted requests must equal ok + timed-out + cancelled")
    # Rejections and timeouts are counted exactly once each.
    assert svc.m_rejected.value == tally.rejected
    assert svc.m_timeouts.value == tally.timeouts
    # A cancel can lose the race with the response (the future resolved
    # first, the caller still observes CancelledError) — so the metric
    # may undercount observed cancellations, but never overcount.
    assert svc.m_cancelled.value <= tally.cancelled
    # Nothing left in flight once the service drained.
    assert svc.m_inflight.value == 0
    assert svc.queue_depth == 0
    # Served work balances the latency histogram and the cycle ledger.
    assert svc.h_latency.count == svc.m_ops.value
    assert (svc.m_cycles.value
            == svc.m_ops.value + RECOVERY * svc.m_stalls.value)
    # Abandoned requests may still have been executed (the cancel lost
    # the race), so served ops bound client successes from above.
    assert svc.m_ops.value >= tally.ok


def _validate_against_oracle(tally):
    pairs = [(a, b) for a, b, _ in tally.responses]
    ref = _reference(pairs, WIDTH, WINDOW)
    for i, (_, _, resp) in enumerate(tally.responses):
        assert resp.sum_out == ref.exact_sums[i]
        assert resp.cout == ref.exact_couts[i]
        assert resp.stalled == ref.flags[i]
        assert resp.latency_cycles == 1 + (RECOVERY if ref.flags[i] else 0)


@pytest.mark.slow
def test_soak_chaos_reconciles():
    svc, tally = _soak()
    assert tally.ok > 0  # the storm actually delivered work
    assert tally.cancelled > 0 and tally.timeouts > 0  # ... and chaos
    _reconcile(svc, tally)
    _validate_against_oracle(tally)


def test_soak_clean_traffic_reconciles_exactly():
    svc, tally = _soak(cancel_p=0.0, timeout_p=0.0, chaos=False,
                       queue_capacity=1024)
    assert tally.timeouts == 0 and tally.cancelled == 0
    assert tally.rejected == 0
    _reconcile(svc, tally)
    # With no chaos, served ops equal client-observed successes exactly.
    assert svc.m_ops.value == tally.ok
    _validate_against_oracle(tally)


def test_soak_overload_pressure_counts_rejections():
    svc, tally = _soak(n_clients=12, pairs_per_client=40, cancel_p=0.0,
                       timeout_p=0.0, chaos=False, queue_capacity=1)
    _reconcile(svc, tally)
    _validate_against_oracle(tally)


@pytest.mark.skipif(not nightly_enabled(),
                    reason="nightly-only (set REPRO_NIGHTLY=1 to run)")
def test_soak_nightly_long_run():
    svc, tally = _soak(n_clients=16, pairs_per_client=1000)
    assert tally.ok > 0 and tally.cancelled > 0 and tally.timeouts > 0
    _reconcile(svc, tally)
    _validate_against_oracle(tally)
