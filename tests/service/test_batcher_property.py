"""Property: the micro-batcher never loses or double-answers a request.

Under any interleaving of admissions, queue-full rejections and caller
cancellations, every submitted request has exactly one fate — answered
correctly, rejected with `ServiceOverloadedError`, or cancelled — and
answered requests complete in admission order (monotone accept cycles).
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ServiceOverloadedError, VlsaService

WIDTH = 16
MASK = (1 << WIDTH) - 1

request_list = st.lists(
    st.tuples(st.integers(0, MASK), st.integers(0, MASK),
              st.booleans()),  # (a, b, cancel_before_execution)
    min_size=1, max_size=24)


@given(requests=request_list, capacity=st.integers(1, 8),
       max_batch=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_no_request_lost_or_double_answered(requests, capacity, max_batch):
    async def main():
        svc = VlsaService(width=WIDTH, window=3, queue_capacity=capacity,
                          max_batch_ops=max_batch)
        await svc.start()
        loop = asyncio.get_running_loop()
        # Count every future resolution to prove nothing resolves twice
        # (a second set_result would raise InvalidStateError and kill
        # the batcher; we also assert it stays alive).
        tasks = [loop.create_task(svc.submit(a, b))
                 for (a, b, _) in requests]
        await asyncio.sleep(0)  # all admissions/rejections happen
        assert svc.queue_depth <= capacity
        for task, (_, _, cancel) in zip(tasks, requests):
            if cancel:
                task.cancel()
        results = await asyncio.gather(*tasks, return_exceptions=True)
        batcher_alive = not svc._batcher.done()
        await svc.stop()
        return svc, results, batcher_alive

    svc, results, batcher_alive = asyncio.run(main())
    assert batcher_alive, "batcher task died (double answer?)"

    answered = rejected = cancelled = 0
    last_accept = -1
    for (a, b, was_cancelled), outcome in zip(requests, results):
        if isinstance(outcome, ServiceOverloadedError):
            rejected += 1
        elif isinstance(outcome, asyncio.CancelledError):
            assert was_cancelled
            cancelled += 1
        else:
            # Exactly-once, correct, in admission order.
            assert outcome.sum_out == (a + b) & MASK
            assert outcome.cout == (a + b) >> WIDTH
            assert outcome.accept_cycle > last_accept
            last_accept = outcome.accept_cycle
            answered += 1

    # Every request has exactly one fate; none dropped silently.
    assert answered + rejected + cancelled == len(requests)
    assert svc.m_rejected.value == rejected
    assert svc.m_cancelled.value == cancelled
    assert svc.m_ops.value == answered
    assert svc.m_queue_depth.peak <= capacity
