"""TCP front-end: JSON-lines protocol, errors, metrics commands."""

import asyncio
import json

from repro.service import VlsaServer, VlsaService


async def _roundtrip(server, messages):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    replies = []
    try:
        for msg in messages:
            raw = (msg if isinstance(msg, (bytes, bytearray))
                   else json.dumps(msg).encode())
            writer.write(raw + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return replies


def test_add_roundtrip_and_id_echo():
    async def main():
        async with VlsaServer(VlsaService(width=64), port=0) as server:
            return await _roundtrip(server, [
                {"id": 7, "a": 123, "b": 456},
                {"id": 8, "a": (1 << 64) - 1, "b": 1},
            ])
    first, second = asyncio.run(main())
    assert first == {"id": 7, "sum": 579, "cout": 0, "stalled": False,
                     "latency_cycles": 1, "accept_cycle": 0}
    assert second["sum"] == 0
    assert second["cout"] == 1


def test_info_metrics_and_prometheus_commands():
    async def main():
        async with VlsaServer(VlsaService(width=32, window=8),
                              port=0) as server:
            return await _roundtrip(server, [
                {"a": 1, "b": 2},
                {"cmd": "info"},
                {"cmd": "metrics"},
                {"cmd": "prometheus"},
            ])
    _, info, metrics, prom = asyncio.run(main())
    assert info["width"] == 32
    assert info["window"] == 8
    assert info["backend"] == "numpy"
    assert metrics["metrics"]["ops_total"]["value"] == 1
    assert metrics["metrics"]["connections_total"]["value"] == 1
    assert "vlsa_ops_total 1" in prom["prometheus"]


def test_bad_requests_get_error_codes():
    async def main():
        async with VlsaServer(VlsaService(width=64), port=0) as server:
            return await _roundtrip(server, [
                b"this is not json",
                {"cmd": "frobnicate"},
                {"a": 1},
                {"a": "x", "b": 2},
            ])
    replies = asyncio.run(main())
    assert [r["code"] for r in replies] == ["bad_request"] * 4
    assert all("error" in r for r in replies)


def test_out_of_range_operands_answered_and_service_survives():
    """Regression: one request with a >= 2^64 or negative operand used
    to kill the micro-batcher, hanging every later request."""
    async def main():
        async with VlsaServer(VlsaService(width=64), port=0) as server:
            return await _roundtrip(server, [
                {"id": 1, "a": 1 << 300, "b": -1},
                {"id": 2, "a": 2, "b": 3},
            ])
    first, second = asyncio.run(main())
    mask = (1 << 64) - 1
    assert first["sum"] == mask  # (0 + 0xFFFF...F) mod 2^64
    assert second["sum"] == 5
    assert second["accept_cycle"] == (first["accept_cycle"]
                                      + first["latency_cycles"])


def test_overload_surfaces_as_error_code():
    async def main():
        service = VlsaService(width=64, queue_capacity=1)
        async with VlsaServer(service, port=0) as server:
            host, port = server.address
            # Gate the batcher's next queue.get so the queue stays full
            # deterministically after the first round trip completes.
            gate = asyncio.Event()
            real_get = service._queue.get

            async def gated_get():
                await gate.wait()
                return await real_get()

            service._queue.get = gated_get
            first = (await _roundtrip(server, [{"a": 1, "b": 1}]))[0]
            assert first["sum"] == 2  # batcher is now parked on the gate
            # Second request occupies the single queue slot...
            r2_reader, r2_writer = await asyncio.open_connection(host, port)
            r2_writer.write(b'{"a": 2, "b": 2}\n')
            await r2_writer.drain()
            await asyncio.sleep(0.05)
            # ...so a third is rejected over the wire.
            reply = (await _roundtrip(server, [{"a": 3, "b": 3}]))[0]
            gate.set()  # release the batcher; request 2 completes
            second = json.loads(await r2_reader.readline())
            r2_writer.close()
            await r2_writer.wait_closed()
            return reply, second, service
    reply, second, service = asyncio.run(main())
    assert reply["code"] == "overloaded"
    assert second["sum"] == 4
    assert service.m_rejected.value == 1


def test_multiple_connections_share_the_service():
    async def main():
        async with VlsaServer(VlsaService(width=64), port=0) as server:
            a = _roundtrip(server, [{"a": 1, "b": 2}])
            b = _roundtrip(server, [{"a": 3, "b": 4}])
            replies = await asyncio.gather(a, b)
            metrics = (await _roundtrip(
                server, [{"cmd": "metrics"}]))[0]["metrics"]
            return replies, metrics
    (ra, rb), metrics = asyncio.run(main())
    assert ra[0]["sum"] == 3
    assert rb[0]["sum"] == 7
    assert metrics["ops_total"]["value"] == 2
    assert metrics["connections_total"]["value"] == 3
