"""VlsaService: serving, backpressure, timeouts, cancellation, accounting."""

import asyncio

import pytest

from repro.arch import VlsaMachine
from repro.service import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
    VlsaService,
)


def run(coro):
    return asyncio.run(coro)


def test_submit_returns_correct_sum():
    async def main():
        async with VlsaService(width=64) as svc:
            resp = await svc.submit(123, 456)
            assert resp.sum_out == 579
            assert resp.cout == 0
            assert resp.latency_cycles == 1
            assert not resp.stalled
            return svc
    svc = run(main())
    assert svc.m_ops.value == 1
    assert svc.m_requests.value == 1


def test_adversarial_pair_stalls_and_costs_recovery():
    async def main():
        async with VlsaService(width=32, window=6,
                               recovery_cycles=2) as svc:
            resp = await svc.submit((1 << 31) - 1, 1)  # full carry chain
            assert resp.stalled
            assert resp.latency_cycles == 3
            assert resp.sum_out == 1 << 31
            assert svc.cycle == 3
    run(main())


def test_submit_batch_parallel_lists():
    async def main():
        async with VlsaService(width=16) as svc:
            reply = await svc.submit_batch([(1, 2), (0xFFFF, 1), (7, 8)])
            assert reply.sums == [3, 0, 15]
            assert reply.couts == [0, 1, 0]
            assert reply.size == 3
            assert reply.cycles == sum(reply.latencies)
            empty = await svc.submit_batch([])
            assert empty.size == 0
    run(main())


def test_service_matches_vlsa_machine_accounting(rng):
    """Cycle accounting through the service == the Fig. 6 machine."""
    width, window, recovery = 16, 3, 2
    pairs = [(rng.getrandbits(width), rng.getrandbits(width))
             for _ in range(300)]
    trace = VlsaMachine(width, window=window,
                        recovery_cycles=recovery).run(pairs)

    async def main():
        async with VlsaService(width=width, window=window,
                               recovery_cycles=recovery) as svc:
            reply = await svc.submit_batch(pairs)
            assert reply.latencies == [r.latency_cycles
                                       for r in trace.results]
            assert reply.sums == [r.sum_out for r in trace.results]
            assert svc.cycle == trace.total_cycles
            assert svc.mean_latency_cycles == pytest.approx(
                trace.average_latency_cycles)
    run(main())


def test_backpressure_bounded_queue_and_counted_rejections():
    """With capacity Q: depth never exceeds Q; overflow is rejected and
    counted in the registry — never silently dropped."""
    q = 4
    n = 10

    async def main():
        svc = VlsaService(width=64, queue_capacity=q)
        await svc.start()
        # Tasks admit in creation order before the batcher gets a turn,
        # so the queue deterministically overflows.
        tasks = [asyncio.get_running_loop().create_task(svc.submit(i, i))
                 for i in range(n)]
        await asyncio.sleep(0)
        assert svc.queue_depth <= q
        results = await asyncio.gather(*tasks, return_exceptions=True)
        await svc.stop()
        return svc, results

    svc, results = run(main())
    ok = [r for r in results if not isinstance(r, Exception)]
    rejected = [r for r in results if isinstance(r, ServiceOverloadedError)]
    assert len(ok) == q
    assert len(rejected) == n - q
    assert svc.m_rejected.value == n - q
    assert svc.m_ops.value == q
    assert svc.m_queue_depth.peak <= q
    # Accounting is complete: admitted + rejected == offered.
    assert svc.m_requests.value + svc.m_rejected.value == n


def test_retry_after_overload_eventually_succeeds():
    async def main():
        svc = VlsaService(width=64, queue_capacity=1)
        await svc.start()
        loop = asyncio.get_running_loop()
        blocker = loop.create_task(svc.submit(1, 1))
        overflow = loop.create_task(svc.submit(2, 2))
        await asyncio.sleep(0)
        # Queue is full; a retried submit succeeds once it drains.
        resp = await svc.submit(3, 4, retries=10, retry_backoff=0.001)
        assert resp.sum_out == 7
        results = await asyncio.gather(blocker, overflow,
                                       return_exceptions=True)
        assert results[0].sum_out == 2
        assert isinstance(results[1], ServiceOverloadedError)
        await svc.stop()
        return svc
    svc = run(main())
    assert svc.m_retries.value >= 1


def test_timeout_counted_and_not_double_answered():
    async def main():
        svc = VlsaService(width=64)
        await svc.start()
        # Swallow execution so responses never arrive.
        real_execute = svc._execute_batch
        svc._execute_batch = lambda batch: None
        with pytest.raises(RequestTimeoutError):
            await svc.submit(1, 2, timeout=0.02)
        svc._execute_batch = real_execute
        # Service still healthy afterwards.
        resp = await svc.submit(2, 3)
        assert resp.sum_out == 5
        await svc.stop()
        return svc
    svc = run(main())
    assert svc.m_timeouts.value == 1
    assert svc.m_ops.value == 1  # the timed-out op was never executed


def test_cancellation_counted_and_skipped():
    async def main():
        svc = VlsaService(width=64)
        await svc.start()
        real_execute = svc._execute_batch
        svc._execute_batch = lambda batch: None
        task = asyncio.get_running_loop().create_task(svc.submit(9, 9))
        await asyncio.sleep(0)
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        svc._execute_batch = real_execute
        resp = await svc.submit(4, 5)
        assert resp.sum_out == 9
        await svc.stop()
        return svc
    svc = run(main())
    assert svc.m_cancelled.value == 1
    assert svc.m_ops.value == 1


def test_malformed_operands_do_not_kill_the_batcher():
    """Regression: a huge or negative operand used to raise
    OverflowError inside the numpy batch and permanently wedge the
    micro-batcher.  Operands are masked; the service keeps serving."""
    async def main():
        async with VlsaService(width=64, backend="numpy") as svc:
            mask = (1 << 64) - 1
            resp = await svc.submit(1 << 300, -1, timeout=1.0)
            assert resp.sum_out == ((1 << 300) + (-1 & mask)) & mask
            # The batcher survived: a normal request still completes.
            resp = await svc.submit(2, 3, timeout=1.0)
            assert resp.sum_out == 5
            return svc
    svc = run(main())
    assert svc.m_ops.value == 2
    assert svc.m_batch_failures.value == 0


def test_executor_exception_fails_batch_but_not_service():
    """An executor crash fails that batch's futures with the error and
    the batch loop keeps running — later requests still succeed."""
    async def main():
        svc = VlsaService(width=64)
        await svc.start()
        real_execute = svc.executor.execute
        svc.executor.execute = lambda pairs: (_ for _ in ()).throw(
            RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            await svc.submit(1, 2, timeout=1.0)
        svc.executor.execute = real_execute
        resp = await svc.submit(2, 3, timeout=1.0)
        assert resp.sum_out == 5
        await svc.stop()
        return svc
    svc = run(main())
    assert svc.m_batch_failures.value == 1
    assert svc.m_ops.value == 1


def test_stop_does_not_hang_when_batcher_already_dead():
    """stop() must not block on a full queue whose consumer is gone."""
    async def main():
        svc = VlsaService(width=64, queue_capacity=2)
        await svc.start()
        svc._batcher.cancel()
        await asyncio.sleep(0)
        # Fill the queue so the old `await queue.put(_SHUTDOWN)` would
        # have blocked forever with no consumer.
        loop = asyncio.get_running_loop()
        tasks = [loop.create_task(svc.submit(i, i)) for i in range(2)]
        await asyncio.sleep(0)
        await asyncio.wait_for(svc.stop(), timeout=1.0)
        results = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, ServiceClosedError) for r in results)
    run(main())


def test_submit_without_start_raises():
    async def main():
        svc = VlsaService(width=64)
        with pytest.raises(ServiceClosedError):
            await svc.submit(1, 2)
    run(main())


def test_stop_is_idempotent_and_drains():
    async def main():
        svc = VlsaService(width=64)
        await svc.start()
        task = asyncio.get_running_loop().create_task(svc.submit(1, 2))
        await asyncio.sleep(0)
        await svc.stop()
        await svc.stop()  # second stop is a no-op
        resp = await task  # admitted before stop -> still answered
        assert resp.sum_out == 3
    run(main())


def test_micro_batcher_coalesces_pending_requests():
    async def main():
        svc = VlsaService(width=64, queue_capacity=64)
        await svc.start()
        loop = asyncio.get_running_loop()
        tasks = [loop.create_task(svc.submit(i, 1)) for i in range(16)]
        results = await asyncio.gather(*tasks)
        await svc.stop()
        assert [r.sum_out for r in results] == [i + 1 for i in range(16)]
        return svc
    svc = run(main())
    # All 16 admitted before the batcher ran -> one coalesced batch.
    assert svc.m_batches.value == 1
    assert svc.h_batch.max == 16


def test_max_batch_ops_caps_coalescing():
    async def main():
        svc = VlsaService(width=64, queue_capacity=64, max_batch_ops=4)
        await svc.start()
        loop = asyncio.get_running_loop()
        tasks = [loop.create_task(svc.submit(i, 1)) for i in range(10)]
        await asyncio.gather(*tasks)
        await svc.stop()
        return svc
    svc = run(main())
    assert svc.h_batch.max <= 4
    assert svc.m_ops.value == 10


def test_accept_cycles_monotone_in_admission_order():
    async def main():
        async with VlsaService(width=64) as svc:
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(svc.submit(i, i)) for i in range(8)]
            results = await asyncio.gather(*tasks)
            cycles = [r.accept_cycle for r in results]
            assert cycles == sorted(cycles)
            assert len(set(cycles)) == len(cycles)
    run(main())


def test_metrics_and_trace_flow_through_run_context():
    from repro.engine import RunContext

    ctx = RunContext(seed=0, label="svc-test")

    async def main():
        async with VlsaService(width=64, ctx=ctx) as svc:
            await svc.submit(1, 2)
    run(main())
    assert ctx.counters["service_ops"] == 1
    kinds = [e["kind"] for e in ctx.events]
    assert "service_start" in kinds
    assert "batch_executed" in kinds
    assert "service_stop" in kinds
    manifest = ctx.as_manifest()
    assert manifest["events"] == ctx.events


def test_analytic_model_properties():
    svc = VlsaService(width=64)
    p = svc.analytic_stall_probability
    assert 0 < p < 1e-3
    assert svc.analytic_latency_cycles == pytest.approx(1 + p)


def test_prometheus_snapshot_after_traffic():
    async def main():
        async with VlsaService(width=64) as svc:
            await svc.submit_batch([(i, i) for i in range(32)])
            return svc.metrics_prometheus()
    text = run(main())
    assert "vlsa_ops_total 32" in text
    assert "vlsa_batches_total 1" in text
