"""Load generator: workloads, analytic agreement, reporting."""

import numpy as np
import pytest

from repro.engine import RunContext
from repro.service import make_workload, run_loadgen


def test_uniform_loadgen_matches_analytic_latency():
    report = run_loadgen("uniform", ops=60000, width=64, chunk=2048,
                         concurrency=4, ctx=RunContext(seed=1))
    assert report.ops == 60000
    assert report.analytic_latency_cycles is not None
    # The acceptance bound: mean latency within 5% of 1 + P * recovery.
    assert report.mean_latency_cycles == pytest.approx(
        report.analytic_latency_cycles, rel=0.05)
    assert report.total_cycles == (
        60000 + round(report.stall_rate * 60000))
    assert report.rejected == 0


def test_adversarial_loadgen_pins_latency_at_worst_case():
    report = run_loadgen("adversarial", ops=4000, width=32, chunk=512,
                         recovery_cycles=2, ctx=RunContext(seed=2))
    assert report.stall_rate == 1.0
    assert report.mean_latency_cycles == pytest.approx(3.0)
    assert report.analytic_stall_rate == 1.0
    assert report.total_cycles == 3 * 4000


def test_biased_loadgen_matches_biased_markov_model():
    # alpha=0.5 degenerates to uniform; use a strong bias instead.
    report = run_loadgen("biased", ops=40000, width=32, window=4,
                         alpha=0.75, chunk=2048, ctx=RunContext(seed=3))
    assert report.params["alpha"] == pytest.approx(0.75)
    assert report.analytic_stall_rate is not None
    # Biased traffic stalls far more than uniform at this window.
    assert report.stall_rate == pytest.approx(report.analytic_stall_rate,
                                              rel=0.15)
    assert report.stall_rate > 0.01


def test_attack_workload_replays_cipher_traffic():
    report = run_loadgen("attack", ops=3000, chunk=512,
                         ctx=RunContext(seed=4))
    assert report.width == 32  # ARX block halves
    assert report.ops == 3000
    assert report.analytic_stall_rate is None  # correlated, no closed form
    assert report.mean_latency_cycles >= 1.0


def test_mixed_workload_analytic_blend():
    report = run_loadgen("mixed", ops=20000, width=64,
                         adversarial_fraction=0.25, chunk=1024,
                         ctx=RunContext(seed=5))
    assert report.analytic_stall_rate == pytest.approx(0.25, rel=0.01)
    assert report.stall_rate == pytest.approx(0.25, rel=0.2)


def test_bigint_backend_loadgen():
    report = run_loadgen("uniform", ops=2000, width=96, chunk=256,
                         backend="bigint", ctx=RunContext(seed=6))
    assert report.backend == "bigint"
    assert report.ops == 2000


def test_report_serializes_and_renders():
    report = run_loadgen("uniform", ops=1000, chunk=256,
                         ctx=RunContext(seed=7))
    payload = report.as_dict()
    assert payload["workload"] == "uniform"
    assert payload["metrics"]["ops_total"]["value"] == 1000
    text = report.render()
    assert "adds/second" in text
    assert "p50=" in text


def test_loadgen_records_context_events():
    ctx = RunContext(seed=8, label="loadgen-test")
    run_loadgen("uniform", ops=500, chunk=128, ctx=ctx)
    assert ctx.counters["loadgen_ops"] == 500
    assert any(e["kind"] == "loadgen_done" for e in ctx.events)
    assert "loadgen" in ctx.phases


def test_make_workload_validation():
    with pytest.raises(ValueError):
        make_workload("nope", 64, 18, 100)
    with pytest.raises(ValueError):
        make_workload("biased", 128, 18, 100)
    with pytest.raises(ValueError):
        make_workload("mixed", 64, 18, 100, adversarial_fraction=1.5)


def test_workload_streams_are_seeded():
    def chunks(seed):
        rng = np.random.default_rng(seed)
        wl = make_workload("uniform", 64, 18, 512, chunk=256, rng=rng)
        return [pair for chunk in wl.chunks for pair in chunk]

    assert chunks(0) == chunks(0)
    assert chunks(0) != chunks(1)
