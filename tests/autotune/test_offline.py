"""Offline what-if analysis and the ``repro autotune`` CLI verb."""

import json

import pytest

from repro.autotune import SLA, what_if
from repro.cli import main


@pytest.fixture(autouse=True)
def _results_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def test_what_if_uniform_two_families_feasible():
    decision = what_if(64, SLA(stall_rate=0.02), p_propagate=0.5,
                       families=["aca", "blockspec"])
    assert decision.feasible
    assert decision.chosen.candidate.family in ("aca", "blockspec")
    assert decision.chosen.stall_rate <= 0.02
    assert decision.alternatives


def test_what_if_adversarial_profile_still_has_a_safe_config():
    decision = what_if(64, SLA(stall_rate=0.02), p_propagate=7 / 8,
                       families=["aca"])
    assert decision.feasible
    assert decision.chosen.candidate.primary == 64


def test_what_if_impossible_sla_reported_infeasible():
    decision = what_if(64, SLA(stall_rate=1e-12), p_propagate=0.5,
                       windows=[2, 4], families=["aca"])
    assert not decision.feasible


def test_autotune_cli_offline_saves_report(capsys, _results_tmpdir):
    assert main(["autotune", "--families", "aca,blockspec",
                 "--sla-stall-rate", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "autotune" in out.lower()
    path = _results_tmpdir / "autotune_report.json"
    assert path.exists()
    report = json.loads(path.read_text())
    assert report["chosen"]["stall_rate"] <= 0.02


def test_autotune_cli_offline_strict_exit_on_infeasible(capsys):
    rc = main(["autotune", "--families", "aca", "--windows", "2,3",
               "--sla-stall-rate", "1e-12", "--strict", "--no-save"])
    assert rc == 1


def test_autotune_cli_online_strict_converges(capsys, _results_tmpdir):
    rc = main(["autotune", "--online", "--ops", "24000", "--chunk", "512",
               "--decide-every", "1024", "--strict"])
    assert rc == 0
    report = json.loads(
        (_results_tmpdir / "autotune_report.json").read_text())
    assert report["converged"] and report["sla_met"]
    decisions = json.loads(
        (_results_tmpdir / "autotune_decisions.json").read_text())
    assert decisions, "decision trace artifact must not be empty"


def test_autotune_cli_no_save_writes_nothing(capsys, _results_tmpdir):
    assert main(["autotune", "--no-save"]) == 0
    assert list(_results_tmpdir.iterdir()) == []
