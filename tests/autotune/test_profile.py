"""OperandProfile: popcount accounting, sliding window, priors."""

import numpy as np
import pytest

from repro.autotune import OperandProfile
from repro.autotune.profile import profile_from_pairs


def test_empty_profile_uses_uniform_priors():
    prof = OperandProfile(width=64)
    assert prof.pairs == 0
    assert prof.p_propagate == 0.5
    assert prof.p_generate == 0.25
    assert prof.p_kill == pytest.approx(0.25)


def test_observe_pairs_matches_bin_popcounts(rng):
    width = 32
    pairs = [(rng.getrandbits(width), rng.getrandbits(width))
             for _ in range(200)]
    prof = profile_from_pairs(width, pairs)
    prop = sum(bin(a ^ b).count("1") for a, b in pairs)
    gen = sum(bin(a & b).count("1") for a, b in pairs)
    assert prof.pairs == len(pairs)
    assert prof.p_propagate == pytest.approx(prop / (len(pairs) * width))
    assert prof.p_generate == pytest.approx(gen / (len(pairs) * width))


def test_observe_arrays_agrees_with_observe_pairs(rng):
    width = 64
    n = 300
    a = np.array([rng.getrandbits(width) for _ in range(n)], dtype=np.uint64)
    b = np.array([rng.getrandbits(width) for _ in range(n)], dtype=np.uint64)
    via_arrays = OperandProfile(width=width)
    via_arrays.observe_arrays(a, b)
    via_pairs = OperandProfile(width=width)
    via_pairs.observe_pairs([(int(x), int(y)) for x, y in zip(a, b)])
    assert via_arrays.p_propagate == pytest.approx(via_pairs.p_propagate)
    assert via_arrays.p_generate == pytest.approx(via_pairs.p_generate)


def test_observe_dispatches_on_pairs_matrix(rng):
    width = 16
    mat = np.array([[3, 5], [0xFFFF, 1], [7, 8]], dtype=np.uint64)
    prof = OperandProfile(width=width)
    prof.observe(mat)
    assert prof.pairs == 3
    ref = profile_from_pairs(width, [(3, 5), (0xFFFF, 1), (7, 8)])
    assert prof.p_propagate == pytest.approx(ref.p_propagate)


def test_sliding_window_evicts_old_segments():
    width = 8
    prof = OperandProfile(width=width, window_pairs=100)
    # First segment: all-propagate pairs (a ^ b = 0xFF).
    prof.observe_pairs([(0xFF, 0x00)] * 100)
    assert prof.p_propagate == pytest.approx(1.0)
    # Push three more segments of all-kill pairs; the propagate segment
    # must age out entirely.
    for _ in range(3):
        prof.observe_pairs([(0x00, 0x00)] * 50)
    assert prof.pairs <= 100
    assert prof.p_propagate == pytest.approx(0.0)
    assert prof.p_generate == pytest.approx(0.0)


def test_window_never_evicts_last_segment():
    prof = OperandProfile(width=8, window_pairs=4)
    prof.observe_pairs([(0xFF, 0x00)] * 32)  # one oversized segment
    assert prof.pairs == 32  # kept whole: never drop the only segment
    assert prof.p_propagate == pytest.approx(1.0)


def test_fixed_profile_hits_requested_fractions():
    prof = OperandProfile.fixed(64, 0.375)
    assert prof.p_propagate == pytest.approx(0.375, abs=1e-6)
    assert prof.p_generate == pytest.approx((1 - 0.375) / 2, abs=1e-6)
    biased = OperandProfile.fixed(64, 0.9, p_generate=0.05)
    assert biased.p_propagate == pytest.approx(0.9, abs=1e-6)
    assert biased.p_generate == pytest.approx(0.05, abs=1e-6)


def test_fixed_profile_validates_fractions():
    with pytest.raises(ValueError):
        OperandProfile.fixed(64, 1.5)
    with pytest.raises(ValueError):
        OperandProfile.fixed(64, 0.8, p_generate=0.5)


def test_reset_restores_priors():
    prof = profile_from_pairs(16, [(0xFFFF, 0)] * 10)
    prof.reset()
    assert prof.pairs == 0
    assert prof.p_propagate == 0.5


def test_snapshot_is_json_able():
    import json
    snap = profile_from_pairs(16, [(1, 2), (3, 4)]).snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert snap["pairs"] == 2
