"""Analytic forecasts: uniform agreement, bias response, latency math."""

import math

import pytest

from repro.autotune import CandidateConfig, delay_units, forecast, \
    predict_stall_rate
from repro.autotune.predictor import exact_delay_units
from repro.families import get_family


def _resolved(family, width, window):
    return get_family(family).resolve_params(width, window=window)


@pytest.mark.parametrize("window", [4, 8, 12, 16])
def test_aca_uniform_prediction_is_exact(window):
    """At p = 0.5 the biased run-length DP IS the exact flag rate."""
    fam = get_family("aca")
    params = _resolved("aca", 64, window)
    exact = float(fam.error_model(64, **params).flag_rate)
    predicted = predict_stall_rate("aca", 64, params, 0.5)
    assert predicted == pytest.approx(exact, rel=1e-12)


@pytest.mark.parametrize("family,window,rel", [
    ("blockspec", 8, 1e-9), ("cesa", 16, 1e-4)])
def test_block_families_uniform_prediction_close(family, window, rel):
    """Independence combination vs the exact boundary DP at p = 0.5."""
    fam = get_family(family)
    params = _resolved(family, 64, window)
    exact = float(fam.error_model(64, **params).flag_rate)
    predicted = predict_stall_rate(family, 64, params, 0.5)
    assert predicted == pytest.approx(exact, rel=rel)


def test_aca_window_at_width_degenerates_to_all_propagate():
    params = _resolved("aca", 64, 64)
    for p in (0.25, 0.5, 0.875):
        assert predict_stall_rate("aca", 64, params, p) == \
            pytest.approx(p ** 64)


def test_stall_rate_monotone_in_propagate_bias():
    params = _resolved("aca", 64, 8)
    rates = [predict_stall_rate("aca", 64, params, p)
             for p in (0.125, 0.25, 0.5, 0.75, 0.875)]
    assert rates == sorted(rates)
    assert rates[0] < rates[-1]


def test_stall_rate_monotone_in_window():
    rates = [predict_stall_rate("aca", 64, _resolved("aca", 64, w), 0.5)
             for w in (4, 8, 16, 32, 64)]
    assert rates == sorted(rates, reverse=True)


def test_delay_units_grow_with_window_and_cap_at_exact():
    small = delay_units("aca", 64, _resolved("aca", 64, 4))
    big = delay_units("aca", 64, _resolved("aca", 64, 32))
    assert small < big <= exact_delay_units(64)
    assert exact_delay_units(64) == 2.0 * math.ceil(math.log2(64)) + 4.0


def test_forecast_latency_and_objective_accounting():
    cand = CandidateConfig(family="aca", width=64,
                           params=_resolved("aca", 64, 8), batch_ops=256)
    fc = forecast(cand, 0.5, recovery_cycles=3)
    stall = predict_stall_rate("aca", 64, cand.params, 0.5)
    assert fc.stall_rate == pytest.approx(stall)
    assert fc.mean_latency_cycles == pytest.approx(1.0 + 3 * stall)
    # Batch queueing dominates the p99 figure.
    assert fc.p99_latency_cycles == pytest.approx(
        1.0 + 3 + 255 * fc.mean_latency_cycles)
    assert fc.avg_time_units == pytest.approx(
        fc.delay_units * fc.mean_latency_cycles + 64.0 / 256)
    assert fc.uniform_stall_rate == pytest.approx(stall, rel=1e-12)


def test_forecast_bigger_batches_lower_overhead_raise_p99():
    params = _resolved("aca", 64, 8)
    small = forecast(CandidateConfig("aca", 64, params, batch_ops=64), 0.5)
    big = forecast(CandidateConfig("aca", 64, params, batch_ops=4096), 0.5)
    assert big.avg_time_units < small.avg_time_units
    assert big.p99_latency_cycles > small.p99_latency_cycles


def test_unregistered_family_raises():
    from repro.families.base import FamilyError
    with pytest.raises(FamilyError):
        predict_stall_rate("not-a-family", 64, {}, 0.5)
