"""PolicyEngine: SLA filtering, fail-safe fallback, hysteresis."""

import pytest

from repro.autotune import OperandProfile, PolicyEngine, SLA, \
    default_windows
from repro.autotune.predictor import forecast


def test_default_windows_ladder_clamped_and_includes_width():
    ws = default_windows(64)
    assert ws[0] == 2 and ws[-1] == 64
    assert all(w <= 64 for w in ws)
    assert default_windows(20)[-1] == 20  # width always present


def test_candidate_space_covers_families_and_windows():
    policy = PolicyEngine(64, SLA(), families=["aca", "blockspec"],
                          windows=[4, 8, 64])
    fams = {c.family for c in policy.candidates}
    assert fams == {"aca", "blockspec"}
    assert len(policy.candidates) >= 4  # dedup may merge clamped knobs


def test_unknown_family_rejected_at_construction():
    from repro.families.base import FamilyError
    with pytest.raises(FamilyError):
        PolicyEngine(64, SLA(), families=["nope"])


def test_chosen_config_respects_stall_sla_with_margin():
    sla = SLA(stall_rate=0.02)
    policy = PolicyEngine(64, sla)
    decision = policy.decide(OperandProfile.fixed(64, 0.5))
    assert decision.feasible
    assert decision.chosen.stall_rate <= sla.stall_rate * \
        policy.safety_margin + 1e-12
    assert decision.considered == len(policy.candidates)


def test_adversarial_profile_drives_window_to_width():
    """Propagate-heavy traffic forces the fail-safe exact-like config."""
    policy = PolicyEngine(64, SLA(stall_rate=0.02), families=["aca"])
    decision = policy.decide(OperandProfile.fixed(64, 7 / 8))
    assert decision.feasible
    assert decision.chosen.candidate.primary == 64
    assert decision.chosen.stall_rate == pytest.approx((7 / 8) ** 64)


def test_biased_profile_admits_smaller_window_than_uniform():
    policy = PolicyEngine(64, SLA(stall_rate=0.02), families=["aca"])
    uniform = policy.decide(OperandProfile.fixed(64, 0.5))
    biased = policy.decide(OperandProfile.fixed(64, 0.25))
    # Less propagate mass -> a smaller (faster) window clears the SLA.
    assert biased.chosen.candidate.primary < \
        uniform.chosen.candidate.primary
    assert biased.feasible and uniform.feasible
    assert biased.chosen.stall_rate <= 0.02 * policy.safety_margin


def test_infeasible_sla_falls_back_to_most_conservative():
    # No candidate of a tiny-window-only ladder can meet a 1e-9 SLA at
    # uniform traffic: the decision must be flagged infeasible and pick
    # the minimum-stall candidate anyway.
    policy = PolicyEngine(64, SLA(stall_rate=1e-9), families=["aca"],
                          windows=[2, 3, 4])
    decision = policy.decide(OperandProfile.fixed(64, 0.5))
    assert not decision.feasible
    rates = [forecast(c, 0.5).stall_rate for c in policy.candidates]
    assert decision.chosen.stall_rate == pytest.approx(min(rates))


def test_p99_sla_constrains_batch_size():
    tight = PolicyEngine(64, SLA(stall_rate=None, p99_latency_cycles=200.0),
                         families=["aca"], batch_sizes=[64, 1024, 4096])
    decision = tight.decide(OperandProfile.fixed(64, 0.5))
    assert decision.feasible
    assert decision.chosen.candidate.batch_ops == 64
    loose = PolicyEngine(64, SLA(stall_rate=None, p99_latency_cycles=None),
                         families=["aca"], batch_sizes=[64, 1024, 4096])
    relaxed = loose.decide(OperandProfile.fixed(64, 0.5))
    assert relaxed.chosen.candidate.batch_ops == 4096


def test_hysteresis_keeps_safe_incumbent():
    policy = PolicyEngine(64, SLA(stall_rate=0.02), families=["aca"],
                          hysteresis=0.5)
    profile = OperandProfile.fixed(64, 0.5)
    first = policy.decide(profile)
    # Re-deciding with the chosen config as incumbent must not switch.
    again = policy.decide(profile, current=first.chosen.candidate)
    assert not again.switched
    # A *slightly* worse but still-safe incumbent survives wide
    # hysteresis too.
    incumbent = next(c for c in policy.candidates
                     if c.primary == 64)
    sticky = policy.decide(profile, current=incumbent)
    assert not sticky.switched
    assert sticky.chosen.candidate.key() == incumbent.key()


def test_unsafe_incumbent_is_always_replaced():
    policy = PolicyEngine(64, SLA(stall_rate=0.02), families=["aca"],
                          hysteresis=0.9)
    profile = OperandProfile.fixed(64, 7 / 8)
    incumbent = next(c for c in policy.candidates if c.primary == 8)
    decision = policy.decide(profile, current=incumbent)
    assert decision.switched
    assert decision.chosen.candidate.primary == 64


def test_decision_as_dict_round_trips_to_json():
    import json
    policy = PolicyEngine(32, SLA())
    decision = policy.decide(OperandProfile.fixed(32, 0.5))
    blob = json.dumps(decision.as_dict())
    assert json.loads(blob)["chosen"]["width"] == 32
