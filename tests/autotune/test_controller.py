"""Online controller: convergence under drift, exactness, observability.

The convergence test is the PR's acceptance gate: a fixed-seed drift
workload (uniform -> biased -> propagate-heavy) must end each phase
with the observed stall rate inside the SLA band and consistent with
the analytic prediction within the binomial 3-sigma band.
"""

import pytest

from repro.autotune import (
    AutotuneController,
    OperandProfile,
    PolicyEngine,
    SLA,
    SyncAutotunedExecutor,
    run_online,
)
from repro.service.executor import VlsaBatchExecutor
from repro.service.metrics import MetricsRegistry
from repro.verify.stats import check_rate


def test_drift_convergence_with_sla_band_and_binomial_agreement():
    """Controller re-converges after every distribution shift (seed 7)."""
    report = run_online(width=64, sla=SLA(stall_rate=0.02), ops=60000,
                        chunk=512, seed=7)
    assert [p["name"] for p in report["phases"]] == \
        ["uniform", "biased", "adversarial"]
    for phase in report["phases"]:
        assert phase["stable"], phase
        assert phase["sla_ok"], phase
        assert phase["agreement_ok"], phase
        assert phase["converged"], phase
        # Re-check the binomial band through the verify machinery.
        tail_ops = phase["ops"] - phase["ops"] // 2
        agree = check_rate(name=phase["name"], stream="retest",
                           observed=phase["agreement"]["observed"],
                           trials=phase["agreement"]["trials"],
                           expected_p=phase["predicted_stall_rate"], z=3.0)
        assert agree.ok
        assert phase["agreement"]["trials"] >= tail_ops // 2
    assert report["converged"] and report["sla_met"]
    # The controller must actually have moved at each shift.
    assert report["reconfigurations"] >= 2
    # Whole-stream rate includes the settle transients after each
    # shift, so it only gets a sanity bound; the SLA is graded on tails.
    assert report["observed_stall_rate"] <= 0.1


def test_sync_executor_bit_identical_under_reconfiguration(rng):
    """Mid-stream config changes never alter sums/couts."""
    width = 32
    pairs = [(rng.getrandbits(width), rng.getrandbits(width))
             for _ in range(2000)]
    # Adversarial spice: force stalls so recovery paths are exercised.
    pairs[100:110] = [((1 << width) - 1, 1)] * 10
    policy = PolicyEngine(width, SLA(stall_rate=0.05), batch_sizes=[256])
    tuned = SyncAutotunedExecutor(width, policy, window=4,
                                  decide_every_ops=256, profile_pairs=512)
    out = tuned.execute(pairs)
    exact = VlsaBatchExecutor(width, window=width).execute(pairs)
    assert out.sums == exact.sums
    assert out.couts == exact.couts
    assert out.size == len(pairs)
    assert tuned.controller.ops_seen == len(pairs)


def test_controller_decides_on_epoch_boundary_and_publishes_gauges():
    width = 64
    registry = MetricsRegistry()
    policy = PolicyEngine(width, SLA(stall_rate=0.02), families=["aca"])
    tuned = SyncAutotunedExecutor(width, policy, window=8,
                                  decide_every_ops=128,
                                  registry=registry, tenant="t0")
    ctl = tuned.controller
    assert ctl.g_window.value == 8  # seeded from the target
    tuned.execute([(1, 2)] * 128)
    assert ctl.m_decisions.value == 1
    assert ctl.g_batch.value == tuned.max_batch_ops
    snap = registry.to_json()
    assert "autotune_t0_window" in snap
    assert "autotune_decisions_total" in snap


def test_controller_trace_and_sla_violation_counting():
    width = 64
    policy = PolicyEngine(width, SLA(stall_rate=1e-6), families=["aca"],
                          windows=[2, 3])
    tuned = SyncAutotunedExecutor(width, policy, window=2,
                                  decide_every_ops=64)
    # All-propagate traffic at window 2: every op stalls, nothing is
    # predicted safe -> infeasible decisions + SLA violations.
    tuned.execute([((1 << width) - 1, 1)] * 256)
    ctl = tuned.controller
    assert ctl.sla_violations >= 1
    assert ctl.m_infeasible.value >= 1
    trace = ctl.decision_trace()
    assert trace and trace[0]["sla_violated"]
    assert all(set(r) >= {"ops_seen", "family", "window",
                          "observed_stall_rate", "predicted_stall_rate",
                          "switched", "feasible"} for r in trace)


def test_attach_requires_explicit_decide_cadence_validation():
    policy = PolicyEngine(16, SLA())
    with pytest.raises(ValueError):
        AutotuneController(policy, decide_every_ops=0)


def test_manual_decide_applies_policy_to_target():
    width = 64
    policy = PolicyEngine(width, SLA(stall_rate=0.02), families=["aca"])
    tuned = SyncAutotunedExecutor(width, policy, window=2)
    ctl = tuned.controller
    # Feed a propagate-heavy profile manually, then force a decision.
    ctl.profile = OperandProfile.fixed(width, 7 / 8)
    decision = ctl.decide()
    assert decision.chosen.candidate.primary == 64
    assert tuned.window == 64
    assert tuned.executor.window == 64
