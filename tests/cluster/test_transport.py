"""Transport torture tests: the ring codec, back-pressure, slot
lifecycle, segment hygiene, and the worker death trace.

Everything here runs in-process against plain buffers or real
``/dev/shm`` segments — no worker processes — so the SPSC ring
invariants (publish-after-write, in-order retirement, occupancy
reconciliation) are checked at full speed and the failure messages
point at the exact primitive that broke.
"""

import io
import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import protocol
from repro.cluster.transport import (
    RESULT_TRAILER,
    RING_HEADER,
    SEGMENT_PREFIX,
    SLOT_HEADER,
    Ring,
    SlotOverflow,
    TransportError,
    batch_capacity_ops,
    decode_from,
    default_slot_bytes,
    encode_into,
    open_worker_channel,
    payload_nbytes,
    result_capacity_ops,
    segment_tracker,
)
from repro.cluster.worker import DEATH_TRACE_MARKER, worker_main

U64 = st.integers(0, (1 << 64) - 1)


def make_slot(slot_bytes=4096):
    return memoryview(bytearray(slot_bytes))


def make_ring(slots=4, slot_bytes=1024):
    buf = bytearray(Ring.size_for(slots, slot_bytes))
    return Ring(buf, slots, slot_bytes, create=True)


def batch_msg(pairs):
    arr = np.asarray(pairs, dtype=np.uint64).reshape(len(pairs), 2)
    return (protocol.BATCH, 7, arr)


# ----------------------------------------------------------------------
# Codec round trips
# ----------------------------------------------------------------------
@given(pairs=st.lists(st.tuples(U64, U64), min_size=0, max_size=64),
       msg_id=U64)
@settings(max_examples=60, deadline=None)
def test_batch_roundtrip_bit_identical(pairs, msg_id):
    arr = np.asarray(pairs, dtype=np.uint64).reshape(len(pairs), 2)
    mv = make_slot()
    used = encode_into((protocol.BATCH, msg_id, arr), mv)
    assert used == SLOT_HEADER + arr.nbytes
    kind, got_id, got = decode_from(mv)
    assert kind == protocol.BATCH and got_id == msg_id
    assert got.dtype == np.uint64 and got.shape == (len(pairs), 2)
    assert np.array_equal(got, arr)


@given(n=st.integers(0, 48), msg_id=U64,
       cycles=st.integers(0, 1 << 40), data=st.data())
@settings(max_examples=60, deadline=None)
def test_result_roundtrip_bit_identical(n, msg_id, cycles, data):
    rng = np.random.default_rng(
        data.draw(st.integers(0, 2**32 - 1), label="seed"))
    result = {
        "sums": rng.integers(0, 1 << 63, n, dtype=np.uint64),
        "couts": rng.integers(0, 2, n, dtype=np.uint64),
        "stalled": rng.integers(0, 2, n).astype(bool),
        "spec_errors": rng.integers(0, 2, n).astype(bool),
        "cycles": cycles, "start_cycle": 3,
        "counters": protocol.light_counters(n, 1, 2, cycles),
    }
    mv = make_slot()
    encode_into((protocol.RESULT, msg_id, result), mv)
    kind, got_id, got = decode_from(mv)
    assert kind == protocol.RESULT and got_id == msg_id
    assert np.array_equal(got["sums"], result["sums"])
    assert np.array_equal(got["couts"], result["couts"])
    assert np.array_equal(got["stalled"], result["stalled"])
    assert np.array_equal(got["spec_errors"], result["spec_errors"])
    assert got["cycles"] == cycles and got["start_cycle"] == 3
    assert got["counters"] == result["counters"]


def test_decoded_arrays_are_views_not_copies():
    """Zero-copy is the whole point: decode must alias the slot."""
    mv = make_slot()
    encode_into(batch_msg([(1, 2), (3, 4)]), mv)
    _, _, arr = decode_from(mv)
    # Mutating the slot buffer shows through the decoded array.
    mv[SLOT_HEADER] = 0xFF
    assert arr[0, 0] != 1
    assert arr.base is not None  # frombuffer view, not a materialised copy


def test_max_slot_boundary_exact_fit_and_overflow():
    slot_bytes = 1024
    cap = batch_capacity_ops(slot_bytes)
    mv = make_slot(slot_bytes)
    fits = batch_msg([(i, i) for i in range(cap)])
    assert encode_into(fits, mv) == SLOT_HEADER + cap * 16
    with pytest.raises(SlotOverflow):
        encode_into(batch_msg([(i, i) for i in range(cap + 1)]), mv)

    rcap = result_capacity_ops(slot_bytes)
    n = rcap + 1
    too_big = {"sums": np.zeros(n, np.uint64),
               "couts": np.zeros(n, np.uint64),
               "stalled": np.zeros(n, bool),
               "spec_errors": np.zeros(n, bool),
               "cycles": 1, "start_cycle": 0, "counters": None}
    with pytest.raises(SlotOverflow):
        encode_into((protocol.RESULT, 1, too_big), mv)


def test_pickled_fallback_roundtrip_and_overflow():
    mv = make_slot(512)
    beat = protocol.heartbeat_msg(3, {"worker_ops_total": {
        "kind": "counter", "help": "", "state": {"value": 9}}})
    encode_into(beat, mv)
    assert decode_from(mv) == beat
    huge = protocol.heartbeat_msg(3, {"blob": "x" * 4096})
    with pytest.raises(SlotOverflow):
        encode_into(huge, mv)


def test_payload_nbytes_accounting():
    assert payload_nbytes(batch_msg([(1, 2)] * 10)) == 160
    pairs_as_list = (protocol.BATCH, 1, [(1, 2)] * 10)
    assert payload_nbytes(pairs_as_list) == 160
    result = {"sums": np.zeros(10, np.uint64)}
    assert (payload_nbytes((protocol.RESULT, 1, result))
            == 10 * 18 + RESULT_TRAILER)
    assert payload_nbytes((protocol.SHUTDOWN,)) == 0


def test_default_slot_bytes_floor_and_capacity():
    assert default_slot_bytes(1) == 32768  # control-traffic floor
    for ops in (256, 2048, 8192, 1 << 14):
        size = default_slot_bytes(ops)
        assert size % 4096 == 0
        assert batch_capacity_ops(size) >= ops
        assert result_capacity_ops(size) >= ops


# ----------------------------------------------------------------------
# Ring invariants
# ----------------------------------------------------------------------
def test_ring_fifo_and_in_order_retire():
    ring = make_ring(slots=4)
    for i in range(3):
        assert ring.try_push(batch_msg([(i, i)]))
    assert ring.occupancy == 3
    seqs = []
    for i in range(3):
        seq, (_, _, arr) = ring.pop()
        assert arr[0, 0] == i  # FIFO
        seqs.append(seq)
    assert seqs == [0, 1, 2]
    with pytest.raises(TransportError):
        ring.retire(2)  # strictly in order
    for seq in seqs:
        ring.retire(seq)
    assert ring.occupancy == 0


def test_ring_full_blocks_without_corrupting_inflight_slots():
    """The slow-consumer drill: a full ring refuses new work and the
    refused pushes leave every in-flight slot bit-identical."""
    ring = make_ring(slots=2)
    assert ring.try_push(batch_msg([(11, 12)]))
    assert ring.try_push(batch_msg([(21, 22)]))
    snapshot = bytes(ring._mv)
    # Non-blocking, timed-blocking and repeated refusals: all False.
    assert not ring.try_push(batch_msg([(31, 32)]))
    assert not ring.push(batch_msg([(31, 32)]), timeout=0.05)
    assert ring.full_stalls == 1
    assert bytes(ring._mv) == snapshot  # nothing in flight was touched
    # Retire one slot; the producer proceeds and FIFO order holds.
    seq, (_, _, first) = ring.pop()
    assert first[0, 0] == 11
    ring.retire(seq)
    assert ring.push(batch_msg([(31, 32)]), timeout=0.05)
    _, (_, _, second) = ring.pop()
    assert second[0, 0] == 21


def test_ring_shed_policy_drops_and_counts():
    ring = make_ring(slots=2)
    ring.try_push(batch_msg([(1, 1)]))
    ring.try_push(batch_msg([(2, 2)]))
    assert not ring.push(protocol.heartbeat_msg(0, {}), policy="shed")
    assert ring.shed == 1 and ring.full_stalls == 0
    assert ring.occupancy == 2  # shed message never occupied a slot


@given(ops=st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_ring_occupancy_reconciles_under_any_interleaving(ops):
    """occupancy == submitted - retired, under arbitrary push/retire
    interleavings (True = try push, False = try pop+retire)."""
    ring = make_ring(slots=3, slot_bytes=256)
    pushed = retired = 0
    for do_push in ops:
        if do_push:
            if ring.try_push(batch_msg([(pushed, pushed)])):
                pushed += 1
        else:
            popped = ring.pop()
            if popped is not None:
                ring.retire(popped[0])
                retired += 1
    assert ring.occupancy == pushed - retired
    assert ring.produced == pushed and ring.consumed == retired
    assert 0 <= ring.occupancy <= ring.slots


def test_torn_write_is_never_published():
    """A producer killed mid-slot-write must be invisible: the payload
    bytes land but ``produced`` never bumps, so the consumer sees
    nothing and the slot is reused cleanly by the next push."""
    ring = make_ring(slots=2)
    # Simulate the torn write: encode directly into the slot buffer
    # without the publish step (this is exactly where SIGKILL lands).
    encode_into(batch_msg([(666, 666)]), ring._slot(0))
    assert ring.pop() is None
    assert ring.occupancy == 0
    # A real (published) push then overwrites the torn bytes.
    assert ring.try_push(batch_msg([(1, 2)]))
    seq, (_, _, arr) = ring.pop()
    assert arr[0, 0] == 1


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
def shm_entries():
    import os

    try:
        return [n for n in os.listdir("/dev/shm")
                if n.startswith(SEGMENT_PREFIX)]
    except FileNotFoundError:  # non-Linux: fall back to tracker view
        return segment_tracker.live_names()


def test_segment_tracker_create_destroy_sweep():
    before = set(shm_entries())
    name = f"{SEGMENT_PREFIX}_test_{id(object()):x}"
    segment_tracker.create(name, 4096)
    assert name in segment_tracker.live_names()
    assert set(shm_entries()) - before == {name}
    segment_tracker.destroy(name)
    segment_tracker.destroy(name)  # idempotent
    assert set(shm_entries()) == before
    # sweep() catches what a crashed test would leave behind.
    segment_tracker.create(name + "_b", 4096)
    assert segment_tracker.sweep() >= 1
    assert set(shm_entries()) == before


def test_worker_channel_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        open_worker_channel(("carrier-pigeon", {}))


# ----------------------------------------------------------------------
# Worker death trace (the silent-exit fix)
# ----------------------------------------------------------------------
class _DyingChannel:
    """Delivers one batch, then the router 'vanishes' on send."""

    transport_name = "stub"

    def __init__(self):
        from repro.cluster.transport import ChannelClosed

        self._closed_exc = ChannelClosed
        self._batch = (protocol.BATCH, 1,
                       np.asarray([(1, 2), (3, 4)], dtype=np.uint64))
        self.closed = False

    def recv(self, timeout):
        if self._batch is not None:
            msg, self._batch = self._batch, None
            return msg
        raise self._closed_exc("router gone")

    def send(self, msg, shed_if_full=False):
        raise self._closed_exc("router gone")

    def close(self):
        self.closed = True


def test_worker_emits_structured_death_trace(capsys):
    cfg = {"width": 32, "window": 8, "recovery_cycles": 1,
           "backend": "numpy", "family": "aca",
           "heartbeat_interval": 10.0}
    channel = _DyingChannel()
    worker_main(5, channel, cfg)  # returns instead of raising
    assert channel.closed
    err = capsys.readouterr().err
    lines = [ln for ln in err.splitlines()
             if ln.startswith(DEATH_TRACE_MARKER)]
    assert lines, f"no {DEATH_TRACE_MARKER} line on stderr"
    record = json.loads(lines[0][len(DEATH_TRACE_MARKER):])
    assert record["event"] == "worker_channel_closed"
    assert record["reason"] == "result_send"
    assert record["worker_id"] == 5
    assert record["transport"] == "stub"
    assert record["ops_total"] == 2  # the batch that was executed
    assert record["batches_total"] == 1
