"""Differential verification of the cluster implementation.

The cluster must be bit-identical to the single-process numpy service
on fuzz vectors and exhaustively at tiny widths — the ISSUE's bar for
registering it as a first-class implementation.
"""

import os

import pytest

from repro.cluster.sync import close_shared_cluster
from repro.verify.differential import (
    DifferentialVerifier,
    available_implementations,
    run_exhaustive,
)


@pytest.fixture(autouse=True, scope="module")
def _cluster_pool():
    os.environ["REPRO_CLUSTER_VERIFY_WORKERS"] = "2"
    yield
    close_shared_cluster()
    os.environ.pop("REPRO_CLUSTER_VERIFY_WORKERS", None)


def test_cluster_is_registered():
    impls = available_implementations()
    assert "cluster" in impls
    assert "cluster:shm" in impls


def test_cluster_fuzz_matches_service_numpy():
    """Both transports verified in one run: the pipe path doubles as
    the differential reference for the shm ring codec."""
    verifier = DifferentialVerifier(
        width=16, window=4,
        impls=["service:numpy", "cluster", "cluster:shm"])
    report = verifier.run(
        vectors=1500, seed=0xBEEF,
        streams=["uniform", "adversarial", "boundary"])
    assert report.ok, report.render()
    assert report.mismatch_count == 0
    # Every implementation actually ran every stream's vectors.
    for cov in report.coverage:
        assert cov.vectors >= 3 * 1500


def test_cluster_exhaustive_tiny_width():
    report = run_exhaustive(
        widths=[3], impls=["service:numpy", "cluster", "cluster:shm"])
    assert report.ok, report.render()
    assert report.mismatch_count == 0
    # Complete cells carry the analytic expected counts and match them.
    assert report.exhaustive
    for cell in report.exhaustive:
        assert cell.complete
        assert cell.error_count == cell.expected_error_count
        assert cell.flag_count == cell.expected_flag_count
