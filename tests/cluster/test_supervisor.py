"""Supervision: crash/hang detection, backoff restarts, failover, and
the chaos drill — SIGKILL a random worker mid-load, lose nothing."""

import asyncio
import os
import random
import signal

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster import protocol

WIDTH, WINDOW = 32, 8
MASK = (1 << WIDTH) - 1


def fast_cfg(**kw):
    kw.setdefault("width", WIDTH)
    kw.setdefault("window", WINDOW)
    kw.setdefault("workers", 2)
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("restart_backoff_base", 0.05)
    kw.setdefault("restart_backoff_max", 0.2)
    return ClusterConfig(**kw)


def rand_pairs(n, seed=0):
    rng = random.Random(seed)
    return [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
            for _ in range(n)]


async def _wait_for(predicate, timeout=30.0, what="condition"):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise TimeoutError(f"timed out waiting for {what}")


async def _wait_live(router, n, timeout=30.0):
    await _wait_for(lambda: len(router.supervisor.live) >= n, timeout,
                    f"{n} live workers")


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_crash_is_detected_and_slot_restarts(transport):
    async def main():
        async with ClusterRouter(fast_cfg(transport=transport)) as router:
            await router.wait_ready()
            victim = router.supervisor.live[0]
            victim.send((protocol.CRASH, 23))
            sup = router.supervisor
            await _wait_for(lambda: sup.m_failures.value >= 1,
                            what="crash detection")
            await _wait_live(router, 2)
            assert sup.m_failures.value == 1
            assert sup.m_restarts.value == 1
            # The slot respawned with a fresh worker id.
            wids = [h.wid for h in sup.live]
            assert victim.wid not in wids
            kinds = [e.kind for e in router.tracer.events]
            assert "worker_dead" in kinds
            assert "worker_restart_scheduled" in kinds
            # The reborn pool still serves.
            out = await router.submit_batch(rand_pairs(100))
            assert len(out.sums) == 100
            if transport == "shm":
                # Dead worker's segment pair destroyed, new pair
                # created: exactly two per live worker, no leaks.
                assert len(_shm_segments()) == 2 * len(
                    router.supervisor.live)

    asyncio.run(main())
    if transport == "shm":
        assert _shm_segments() == []


def test_restart_backoff_doubles_per_consecutive_failure():
    async def main():
        async with ClusterRouter(fast_cfg(workers=1)) as router:
            await router.wait_ready()
            sup = router.supervisor
            for k in range(1, 4):
                sup.live[0].send((protocol.CRASH, 5))
                await _wait_for(lambda k=k: sup.m_failures.value >= k,
                                what=f"failure {k}")
                await _wait_live(router, 1)
            scheduled = router.tracer.of_kind("worker_restart_scheduled")
            backoffs = [e.fields["backoff"] for e in scheduled]
            assert backoffs[0] < backoffs[1] < backoffs[2]
            assert backoffs[1] == backoffs[0] * 2

    asyncio.run(main())


def test_hang_detection_kills_and_fails_over():
    cfg = fast_cfg(workers=1, hang_timeout=0.3,
                   restart_backoff_base=60.0, restart_backoff_max=60.0)
    pairs = rand_pairs(50, seed=2)

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            router.supervisor.live[0].send((protocol.HANG, 30.0))
            await asyncio.sleep(0.05)
            # This batch lands on the wedged worker; the monitor must
            # declare it hung, kill it, and fail the batch over to the
            # degraded exact path (no other worker, restart far away).
            out = await asyncio.wait_for(router.submit_batch(pairs), 30.0)
            for (a, b), s in zip(pairs, out.sums):
                assert s == (a + b) & MASK
            assert router.tracer.of_kind("worker_hung")
            assert router.supervisor.m_failures.value == 1
            assert router.m_degraded.value == 1

    asyncio.run(main())


def _shm_segments():
    try:
        return [n for n in os.listdir("/dev/shm")
                if n.startswith("vlsa_ring")]
    except FileNotFoundError:
        from repro.cluster.transport import segment_tracker
        return segment_tracker.live_names()


@pytest.mark.slow
@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_chaos_sigkill_mid_load_zero_lost_zero_duplicated(
        transport, capfd):
    """The issue's chaos drill: SIGKILL a random worker under load.

    Every submitted request must resolve exactly once with exact sums,
    ``worker_restarts_total`` must record the recovery, and the metrics
    conservation identity must hold:
    worker-delivered ops + degraded ops >= router-delivered ops.

    Over shm the kill lands while batches are in flight through the
    rings — publish-after-write means a mid-slot-write death is simply
    an unpublished slot — and teardown must leave zero ``/dev/shm``
    segments and zero resource_tracker warnings behind.
    """
    cfg = fast_cfg(redirect_limit=5, max_batch_ops=512,
                   transport=transport)
    rng = random.Random(0xC0FFEE)
    batches = [rand_pairs(200, seed=i) for i in range(60)]

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            tasks = [asyncio.ensure_future(router.submit_batch(b))
                     for b in batches[:40]]
            # Kill a worker that provably has requests in flight; fall
            # back to a random one if the pool already drained.
            victim = None
            for _ in range(100):
                await asyncio.sleep(0)
                busy = [h for h in router.supervisor.live if h.wire]
                if busy:
                    victim = rng.choice(busy)
                    break
            if victim is None:
                victim = rng.choice(router.supervisor.live)
            os.kill(victim.proc.pid, signal.SIGKILL)
            # Keep traffic flowing through detection and recovery.
            tasks += [asyncio.ensure_future(router.submit_batch(b))
                      for b in batches[40:]]
            results = await asyncio.wait_for(asyncio.gather(*tasks), 60.0)

            # Zero lost, zero duplicated: every batch answered once,
            # in order, with exact sums.
            assert len(results) == len(batches)
            for pairs, out in zip(batches, results):
                assert len(out.sums) == len(pairs)
                for (a, b), s, c in zip(pairs, out.sums, out.couts):
                    assert s == (a + b) & MASK
                    assert c == (a + b) >> WIDTH

            total_ops = sum(len(b) for b in batches)
            assert router.m_ops.value == total_ops
            sup = router.supervisor
            await _wait_for(lambda: sup.m_failures.value >= 1,
                            what="SIGKILL detection")
            await _wait_live(router, 2)
            assert sup.m_restarts.value >= 1

            # Conservation: everything the router delivered was either
            # computed by a worker or served by the degraded path.
            mj = router.metrics_json()
            worker_ops = mj["worker_ops_total"]["value"]
            degraded_ops = mj["degraded_ops_total"]["value"]
            assert worker_ops + degraded_ops >= total_ops
            if transport == "shm":
                # A SIGKILLed worker's segments were destroyed on
                # retirement; only the live pool's remain.
                assert len(_shm_segments()) == 2 * len(
                    router.supervisor.live)

    asyncio.run(main())
    if transport == "shm":
        # Deterministic cleanup: router stop destroyed every segment,
        # and the untracked worker attach kept resource_tracker quiet.
        assert _shm_segments() == []
        err = capfd.readouterr().err
        assert "resource_tracker" not in err
        assert "leaked shared_memory" not in err


def test_graceful_stop_is_not_a_failure():
    async def main():
        router = ClusterRouter(fast_cfg())
        await router.start()
        await router.wait_ready()
        await router.submit_batch(rand_pairs(100))
        await router.stop()
        assert router.supervisor.m_failures.value == 0
        assert router.supervisor.m_restarts.value == 0
        assert router.supervisor.g_live.value == 0
        # Final worker metrics were retired before the processes died.
        assert router.metrics_json()["worker_ops_total"]["value"] == 100

    asyncio.run(main())
