"""ClusterRouter: sharding, bit-identical results, backpressure,
degraded mode, and cluster-wide metrics aggregation."""

import asyncio
import random
from types import SimpleNamespace

import pytest

from repro.cluster import (
    SHARD_POLICIES,
    ClusterConfig,
    ClusterRouter,
    ClusterUnhealthyError,
)
from repro.cluster import protocol
from repro.service import ServiceOverloadedError
from repro.service.executor import VlsaBatchExecutor

WIDTH, WINDOW = 32, 8
MASK = (1 << WIDTH) - 1


def fast_cfg(**kw):
    kw.setdefault("width", WIDTH)
    kw.setdefault("window", WINDOW)
    kw.setdefault("workers", 2)
    kw.setdefault("heartbeat_interval", 0.05)
    return ClusterConfig(**kw)


def run(coro):
    return asyncio.run(coro)


def rand_pairs(n, seed=0):
    rng = random.Random(seed)
    return [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
            for _ in range(n)]


@pytest.mark.parametrize("policy", ["round_robin", "least_loaded", "hash"])
@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_batches_bit_identical_to_executor(policy, transport):
    pairs = rand_pairs(3000, seed=hash(policy) & 0xFFFF)
    want = VlsaBatchExecutor(WIDTH, window=WINDOW).execute(pairs)

    async def main():
        async with ClusterRouter(fast_cfg(shard_policy=policy,
                                          transport=transport)) as router:
            await router.wait_ready()
            got = await router.submit_batch(pairs)
            assert got.sums == want.sums
            assert got.couts == want.couts
            assert got.stalled == want.stalled
            assert got.latencies == want.latencies
            # Scalar path through the same pool.
            resp = await router.submit(MASK, 1)
            assert resp.sum_out == 0 and resp.cout == 1
            assert router.m_ops.value == len(pairs) + 1

    run(main())


def test_concurrent_scalars_spread_over_workers():
    pairs = rand_pairs(300, seed=5)

    async def main():
        async with ClusterRouter(fast_cfg()) as router:
            await router.wait_ready()
            outs = await asyncio.gather(
                *(router.submit(a, b) for a, b in pairs))
            for (a, b), out in zip(pairs, outs):
                assert out.sum_out == (a + b) & MASK
                assert out.cout == (a + b) >> WIDTH
            mj = router.metrics_json()
            per_worker = mj["per_worker"]
            assert len(per_worker) == 2
            served = [w["worker_ops_total"]["value"]
                      for w in per_worker.values()]
            # Round robin over concurrent scalars: both workers serve.
            assert all(s > 0 for s in served)
            assert sum(served) == len(pairs)

    run(main())


def test_empty_batch_and_operand_masking():
    async def main():
        async with ClusterRouter(fast_cfg(workers=1)) as router:
            await router.wait_ready()
            out = await router.submit_batch([])
            assert out.sums == []
            resp = await router.submit((1 << WIDTH) + 3, -1)
            assert resp.sum_out == (3 + MASK) & MASK

    run(main())


def test_backpressure_rejects_when_all_queues_full():
    cfg = fast_cfg(workers=1, worker_queue_ops=64, max_batch_ops=64,
                   wire_inflight=1, hang_timeout=30.0)

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            # Wedge the worker so nothing drains while we overfill.
            router.supervisor.live[0].send((protocol.HANG, 0.6))
            await asyncio.sleep(0.1)
            first = asyncio.ensure_future(
                router.submit_batch(rand_pairs(64)))
            await asyncio.sleep(0)  # let it occupy the queue
            with pytest.raises(ServiceOverloadedError):
                await router.submit_batch(rand_pairs(8, seed=1))
            assert router.m_rejected.value == 1
            # Retry path recovers once the worker wakes up.
            out = await router.submit_batch(
                rand_pairs(8, seed=1), retries=8, retry_backoff=0.2)
            assert len(out.sums) == 8
            assert router.m_retries.value >= 1
            await first

    run(main())


def test_metrics_aggregation_and_conservation():
    pairs = rand_pairs(4000, seed=9)

    async def main():
        async with ClusterRouter(fast_cfg()) as router:
            await router.wait_ready()
            for lo in range(0, len(pairs), 500):
                await router.submit_batch(pairs[lo:lo + 500])
            mj = router.metrics_json()
            merged = {k: v for k, v in mj.items() if k != "per_worker"}
            # Merged view: router-side totals plus worker-side totals,
            # no name collisions (worker metrics are worker_* named).
            assert merged["ops_total"]["value"] == len(pairs)
            assert merged["worker_ops_total"]["value"] == len(pairs)
            assert merged["worker_stalls_total"]["value"] == (
                merged["stalls_total"]["value"])
            assert merged["workers_live"]["value"] == 2
            prom = router.metrics_prometheus()
            assert "vlsa_ops_total" in prom
            assert "vlsa_worker_ops_total" in prom
            # Per-worker breakdown sums to the cluster total.
            per = mj["per_worker"]
            assert sum(w["worker_ops_total"]["value"]
                       for w in per.values()) == len(pairs)
        # After stop the workers are retired, not forgotten.
        final = router.metrics_json()
        assert final["worker_ops_total"]["value"] == len(pairs)

    run(main())


def test_degraded_mode_serves_exact_sums():
    cfg = fast_cfg(workers=1, restart_backoff_base=60.0,
                   restart_backoff_max=60.0)
    pairs = rand_pairs(200, seed=3)

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            handle = router.supervisor.live[0]
            handle.send((protocol.CRASH, 17))
            while router.supervisor.live:
                await asyncio.sleep(0.01)
            out = await router.submit_batch(pairs)
            for (a, b), s, c, f in zip(pairs, out.sums, out.couts,
                                       out.stalled):
                assert s == (a + b) & MASK
                assert c == (a + b) >> WIDTH
                assert f is False  # exact adder never stalls
            resp = await router.submit(MASK, 2)
            assert resp.sum_out == 1 and resp.cout == 1
            assert router.m_degraded.value == 2
            assert router.m_degraded_ops.value == len(pairs) + 1
            assert router.supervisor.m_failures.value == 1

    run(main())


def test_degraded_mode_error_fails_fast():
    cfg = fast_cfg(workers=1, degraded_mode="error",
                   restart_backoff_base=60.0, restart_backoff_max=60.0)

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            router.supervisor.live[0].send((protocol.CRASH, 1))
            while router.supervisor.live:
                await asyncio.sleep(0.01)
            with pytest.raises(ClusterUnhealthyError):
                await router.submit(1, 2)
            assert router.m_failed.value == 1

    run(main())


def test_hash_policy_is_deterministic_affinity():
    cfg = ClusterConfig(width=WIDTH, window=WINDOW, workers=4,
                        worker_queue_ops=100)
    router = SimpleNamespace(cfg=cfg)
    live = [SimpleNamespace(load_ops=0) for _ in range(4)]
    policy = SHARD_POLICIES["hash"]
    picks = {id(policy(router, live, 1, (a, a + 1))) for a in range(50)}
    assert len(picks) > 1  # spreads over the pool
    for a in range(50):
        first = policy(router, live, 1, (a, a + 1))
        assert policy(router, live, 1, (a, a + 1)) is first
    # Affinity is strict: a full affine worker means rejection.
    target = policy(router, live, 1, (7, 8))
    target.load_ops = 100
    assert policy(router, live, 1, (7, 8)) is None


def test_shm_transport_metrics_and_idle_occupancy():
    pairs = rand_pairs(2000, seed=21)

    async def main():
        async with ClusterRouter(fast_cfg(transport="shm")) as router:
            await router.wait_ready()
            for lo in range(0, len(pairs), 250):
                await router.submit_batch(pairs[lo:lo + 250])
            mj = router.metrics_json()
            # Copy-bytes accounting: 16 B/op out, 18 B/op + trailer in.
            assert mj["transport_tx_bytes_total"]["value"] >= (
                16 * len(pairs))
            assert mj["transport_rx_bytes_total"]["value"] >= (
                18 * len(pairs))
            assert mj["transport_tx_msgs_total"]["value"] >= 8
            # Results never take the fallback lane on the happy path.
            assert mj["transport_pipe_fallback_total"]["value"] == 0
            # Drained pool: occupancy gauges reconcile to zero
            # (submitted minus retired, per direction).
            assert mj["ring_tx_occupancy_slots"]["value"] == 0
            assert mj["ring_rx_occupancy_slots"]["value"] == 0
            assert router.describe()["transport"] == "shm"

    run(main())


def test_shm_oversized_batch_takes_pipe_fallback():
    """A batch bigger than one slot must still arrive bit-identically
    via the control-pipe slow lane, and be counted as a fallback."""
    # Slot sized for the control floor only: ~2047 ops fit, send more.
    cfg = fast_cfg(workers=1, transport="shm", shm_slot_bytes=32768)
    pairs = rand_pairs(4000, seed=33)
    want = VlsaBatchExecutor(WIDTH, window=WINDOW).execute(pairs)

    async def main():
        async with ClusterRouter(cfg) as router:
            await router.wait_ready()
            got = await router.submit_batch(pairs)
            assert got.sums == want.sums
            assert got.couts == want.couts
            mj = router.metrics_json()
            assert mj["transport_pipe_fallback_total"]["value"] >= 1

    run(main())


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(workers=0)
    with pytest.raises(ValueError):
        ClusterConfig(transport="carrier-pigeon")
    with pytest.raises(ValueError):
        ClusterConfig(shm_slots=1)
    with pytest.raises(ValueError):
        ClusterConfig(shm_slot_bytes=100)
    with pytest.raises(ValueError):
        ClusterConfig(shard_policy="random")
    with pytest.raises(ValueError):
        ClusterConfig(degraded_mode="panic")
    with pytest.raises(ValueError):
        ClusterConfig(backend="quantum")
    cfg = ClusterConfig(width=128)
    assert cfg.backend == "bigint"
    assert cfg.window <= 128


def test_submit_before_start_is_closed_error():
    from repro.service import ServiceClosedError

    async def main():
        router = ClusterRouter(fast_cfg())
        with pytest.raises(ServiceClosedError):
            await router.submit(1, 2)

    run(main())
