"""Graceful-shutdown contract of ``python -m repro serve``.

SIGINT/SIGTERM must drain the queue, stop the batcher (or cluster),
flush the manifest and exit 0 — for the single-process service and the
multi-process cluster alike.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _spawn_serve(tmp_path, workers):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO, "src"),
               REPRO_RESULTS_DIR=str(tmp_path))
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--width", "32", "--window", "8", "--duration", "120"]
    if workers:
        cmd += ["--workers", str(workers)]
    proc = subprocess.Popen(cmd, env=env, cwd=REPO, text=True,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    port = None
    deadline = time.time() + 90
    seen = []
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        seen.append(line)
        m = re.search(r"listening on [\w.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"server never listened: {seen!r}")
    return proc, port


def _roundtrip(port, n=20):
    with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
        f = s.makefile("rw")
        for i in range(n):
            f.write(json.dumps({"a": i, "b": 100 + i, "id": i}) + "\n")
        f.flush()
        for i in range(n):
            reply = json.loads(f.readline())
            assert reply["sum"] == 100 + 2 * i, reply
        f.write(json.dumps({"cmd": "info"}) + "\n")
        f.flush()
        return json.loads(f.readline())


@pytest.mark.parametrize("workers,sig", [
    (0, signal.SIGINT),
    (0, signal.SIGTERM),
    (2, signal.SIGTERM),
])
def test_serve_signal_drains_and_exits_clean(tmp_path, workers, sig):
    proc, port = _spawn_serve(tmp_path, workers)
    try:
        info = _roundtrip(port)
        if workers:
            assert info["backend"].startswith(f"cluster:{workers}x")
        else:
            assert info["backend"] == "numpy"
        proc.send_signal(sig)
        out, err = proc.communicate(timeout=90)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)
    assert proc.returncode == 0, err
    assert "signal received; drained and shut down" in err
    # Served ops survived into the final metrics dump on stdout.
    assert "vlsa_ops_total 20" in out, out[:800]
    manifest = tmp_path / "serve_manifest.json"
    assert manifest.exists()
    json.loads(manifest.read_text())
