"""Live cluster reconfiguration through the CONFIG wire message."""

import asyncio
import random

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.service.executor import VlsaBatchExecutor

WIDTH = 16
MASK = (1 << WIDTH) - 1
# Propagate run of length 6 from bit 0: flags at window 4, not at 16.
RUN6_PAIR = (0b111111, 1)


def fast_cfg(**kw):
    kw.setdefault("width", WIDTH)
    kw.setdefault("window", 4)
    kw.setdefault("workers", 2)
    kw.setdefault("heartbeat_interval", 0.05)
    return ClusterConfig(**kw)


def run(coro):
    return asyncio.run(coro)


def test_config_reconfigure_validation():
    cfg = fast_cfg()
    from repro.families.base import FamilyError
    with pytest.raises(FamilyError):
        cfg.reconfigure(family="nope")
    with pytest.raises(ValueError):
        cfg.reconfigure(max_batch_ops=0)
    wd = cfg.reconfigure(window=8)
    assert wd["window"] == 8 and cfg.window == 8


def test_router_reconfigure_propagates_to_live_workers():
    async def main():
        async with ClusterRouter(fast_cfg()) as router:
            await router.wait_ready()
            before = await router.submit(*RUN6_PAIR)
            assert before.stalled  # window 4 misses the 6-run
            applied = router.reconfigure(window=WIDTH)
            assert applied["window"] == WIDTH
            assert router.window == WIDTH
            assert router.describe()["family"] == "aca"
            # CONFIG is applied between batches; serve until the swap
            # has landed on every worker (both serve round-robin).
            for _ in range(8):
                after = await router.submit(*RUN6_PAIR)
            assert not after.stalled  # full-width window never flags
            assert router.m_reconfigs.value == 1
            # Worker counters arrive with heartbeats; wait for both.
            reconfigs = 0
            for _ in range(40):
                mj = router.metrics_json()
                reconfigs = sum(
                    w.get("worker_reconfigs_total", {}).get("value", 0)
                    for w in mj["per_worker"].values())
                if reconfigs >= 2:
                    break
                await asyncio.sleep(0.05)
            assert reconfigs == 2  # every live worker applied it
    run(main())


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_reconfigured_cluster_stays_bit_exact(transport):
    rng = random.Random(11)
    pairs = [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
             for _ in range(800)]
    want = VlsaBatchExecutor(WIDTH, window=WIDTH).execute(pairs)

    async def main():
        async with ClusterRouter(fast_cfg(transport=transport)) as router:
            await router.wait_ready()
            first = await router.submit_batch(pairs[:400])
            router.reconfigure(window=12, family="aca")
            second = await router.submit_batch(pairs[400:])
            assert first.sums + second.sums == want.sums
            assert first.couts + second.couts == want.couts
    run(main())
