"""loadgen --target cluster: every workload drives the real pool."""

import pytest

from repro.engine import RunContext
from repro.service import run_loadgen

WIDTH, WINDOW = 32, 8


def _cluster_report(workload, ops, **kw):
    kw.setdefault("width", WIDTH)
    kw.setdefault("window", WINDOW)
    return run_loadgen(workload, ops=ops, target="cluster", workers=2,
                       chunk=512, concurrency=4,
                       ctx=RunContext(seed=11), **kw)


def test_cluster_target_uniform_full_accounting():
    report = _cluster_report("uniform", 6000)
    assert report.ops == 6000
    assert report.backend.startswith("cluster:2x")
    assert report.params["target"] == "cluster"
    assert report.params["workers"] == 2
    # A healthy run touches none of the failure paths.
    assert report.params["worker_restarts"] == 0
    assert report.params["worker_failures"] == 0
    assert report.params["degraded_requests"] == 0
    assert report.params["failed_requests"] == 0
    assert report.rejected == 0
    # The pool still honours the analytic stall model.
    assert report.analytic_stall_rate is not None
    assert report.stall_rate == pytest.approx(report.analytic_stall_rate,
                                              abs=0.02)


@pytest.mark.parametrize("workload", ["adversarial", "mixed", "attack"])
def test_cluster_target_other_workloads(workload):
    report = _cluster_report(workload, 2000)
    assert report.ops == 2000
    assert report.backend.startswith("cluster:2x")
    assert report.mean_latency_cycles >= 1.0
    if workload == "adversarial":
        assert report.stall_rate == 1.0


def test_cluster_target_shard_policies():
    for policy in ("least_loaded", "hash"):
        report = _cluster_report("uniform", 2000, shard_policy=policy)
        assert report.ops == 2000
        assert report.params["shard_policy"] == policy


def test_cluster_target_shm_transport_accounting():
    report = _cluster_report("uniform", 4000, transport="shm")
    assert report.ops == 4000
    assert report.params["transport"] == "shm"
    assert report.params["worker_failures"] == 0
    # Copy-bytes counters prove the rings actually carried the load.
    assert report.params["transport_tx_bytes"] >= 16 * 4000
    assert report.params["transport_rx_bytes"] >= 18 * 4000
    assert report.params["transport_pipe_fallbacks"] == 0
    assert report.params["transport_ring_full_stalls"] == 0


def test_unknown_target_rejected():
    with pytest.raises(ValueError):
        run_loadgen("uniform", ops=10, target="mainframe")
