"""The TCP edge: the JSON-lines batch verb, the self-hosted loadgen
``tcp`` target over both transports, and the external-connect mode."""

import asyncio
import json

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.engine import RunContext
from repro.service import VlsaServer, VlsaService, run_loadgen
from repro.service.executor import VlsaBatchExecutor
from repro.service.server import install_uvloop

WIDTH, WINDOW = 32, 8
MASK = (1 << WIDTH) - 1


async def _rpc(reader, writer, obj):
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_batch_verb_bit_identical_to_executor():
    pairs = [(i * 2654435761 & MASK, (i * 40503) & MASK)
             for i in range(500)]
    want = VlsaBatchExecutor(WIDTH, window=WINDOW).execute(pairs)

    async def main():
        service = VlsaService(width=WIDTH, window=WINDOW)
        async with VlsaServer(service, port=0) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            reply = await _rpc(reader, writer,
                               {"id": 9, "pairs": [list(p) for p in pairs]})
            assert reply["id"] == 9
            assert reply["sums"] == want.sums
            assert reply["couts"] == want.couts
            assert reply["stalled"] == want.stalled
            assert reply["latencies"] == want.latencies
            # Scalar verb still answers on the same connection.
            scalar = await _rpc(reader, writer, {"a": MASK, "b": 1})
            assert scalar["sum"] == 0 and scalar["cout"] == 1
            writer.close()

    asyncio.run(main())


def test_batch_verb_rejects_malformed_pairs():
    async def main():
        service = VlsaService(width=WIDTH, window=WINDOW)
        async with VlsaServer(service, port=0) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            for bad in ([["x", 1]], [[1]], "nope", [[1, 2, 3]]):
                reply = await _rpc(reader, writer, {"pairs": bad})
                assert reply["code"] == "bad_request"
            writer.close()

    asyncio.run(main())


def test_batch_verb_over_cluster_front():
    """The server accepts a ClusterRouter as its service: the batch
    verb drives the full wire path, shm transport underneath."""
    pairs = [(i, MASK - i) for i in range(300)]
    want = VlsaBatchExecutor(WIDTH, window=WINDOW).execute(pairs)

    async def main():
        router = ClusterRouter(ClusterConfig(
            width=WIDTH, window=WINDOW, workers=1, transport="shm",
            heartbeat_interval=0.1))
        async with VlsaServer(router, port=0) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            reply = await _rpc(reader, writer,
                               {"pairs": [list(p) for p in pairs]})
            assert reply["sums"] == want.sums
            assert reply["couts"] == want.couts
            info = await _rpc(reader, writer, {"cmd": "info"})
            assert info["transport"] == "shm"
            assert info["backend"].startswith("cluster:1x")
            writer.close()

    asyncio.run(main())


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_loadgen_tcp_target_self_hosted(transport):
    report = run_loadgen(
        "uniform", ops=3000, target="tcp", workers=2,
        transport=transport, width=WIDTH, window=WINDOW,
        chunk=256, concurrency=4, ctx=RunContext(seed=11))
    assert report.ops == 3000
    assert report.params["target"] == "tcp"
    assert report.params["edge"] == "self-hosted"
    assert report.params["transport"] == transport
    assert report.backend.startswith("cluster:2x")
    assert report.rejected == 0 and report.timeouts == 0
    assert report.params["worker_failures"] == 0
    assert report.params["transport_tx_bytes"] > 0
    assert report.params["transport_rx_bytes"] > 0
    if transport == "shm":
        assert report.params["transport_pipe_fallbacks"] == 0


def test_loadgen_external_connect_mode():
    """Client-only loadgen against an already-listening server."""

    async def main():
        router = ClusterRouter(ClusterConfig(
            width=WIDTH, window=WINDOW, workers=1, transport="shm",
            heartbeat_interval=0.1))
        async with VlsaServer(router, port=0) as server:
            host, port = server.address
            report = await asyncio.to_thread(
                run_loadgen, "uniform", ops=2000, target="tcp",
                connect=(host, port), width=WIDTH, window=WINDOW,
                chunk=256, concurrency=2, ctx=RunContext(seed=7))
            assert report.ops == 2000
            assert report.params["edge"] == "external"
            assert report.params["connect"] == f"{host}:{port}"
            assert report.params["server_info"]["transport"] == "shm"
            assert report.backend.startswith("cluster:1x")
            assert report.rejected == 0 and report.timeouts == 0

    asyncio.run(main())


def test_connect_requires_tcp_target():
    with pytest.raises(ValueError):
        run_loadgen("uniform", ops=10, target="cluster",
                    connect=("127.0.0.1", 1))


def test_install_uvloop_is_safe_without_uvloop():
    # True only when uvloop is importable; either way it must not raise.
    assert install_uvloop() in (True, False)
    asyncio.set_event_loop_policy(None)  # restore the default policy
