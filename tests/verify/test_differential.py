"""Tests of the differential verification engine itself.

The interesting direction is negative: a clean run must pass, and an
injected bug — elementwise *or* purely statistical — must fail the run
with an actionable report.  The statistical mutants are the acceptance
criterion for the analytic cross-check: their sums are perfect, so only
the binomial rate comparison can catch them.
"""

import json

import pytest

from repro.engine import RunContext
from repro.mc.fastsim import detector_flag
from repro.service.metrics import MetricsRegistry
from repro.verify import (
    DifferentialVerifier,
    ImplResult,
    Implementation,
    VerificationError,
    available_implementations,
    default_implementations,
    make_implementation,
    register_implementation,
    unregister_implementation,
)

WIDTH, WINDOW = 16, 4


@pytest.fixture
def mutant_registry():
    """Register mutants for one test; always unregister afterwards."""
    registered = []

    def register(name, factory):
        register_implementation(name, factory)
        registered.append(name)

    yield register
    for name in registered:
        unregister_implementation(name)


class _ExactBase(Implementation):
    """Correct exact-family implementation to mutate from."""

    family = "exact"

    def __init__(self, width, window, recovery_cycles=1):
        self.width = width
        self.window = window
        self.recovery_cycles = recovery_cycles
        self.mask = (1 << width) - 1

    def run(self, pairs):
        sums, couts, flags, lats, errs = [], [], [], [], []
        for a, b in pairs:
            total = a + b
            flag = self._flag(a, b)
            sums.append(total & self.mask)
            couts.append(total >> self.width)
            flags.append(flag)
            lats.append(1 + (self.recovery_cycles if flag else 0))
            errs.append(flag and not self._spec_ok(a, b))
        return ImplResult(sums=sums, couts=couts, flags=flags,
                          latencies=lats, spec_errors=errs)

    def _flag(self, a, b):
        return detector_flag(a, b, self.width, self.window)

    def _spec_ok(self, a, b):
        from repro.mc.fastsim import aca_is_correct

        return aca_is_correct(a, b, self.width, self.window)


class LazyDetectorMutant(_ExactBase):
    """Statistically wrong: under-fires by using window+1.

    Sums stay exact and no per-vector flags are exposed, so elementwise
    comparison sees nothing — only the stall-count rate check can catch
    it (a real hardware bug class: the detector samples one strip late).
    """

    def run(self, pairs):
        res = super().run(pairs)
        stalls = sum(
            1 for a, b in pairs
            if detector_flag(a, b, self.width, self.window + 1))
        return ImplResult(sums=res.sums, couts=res.couts,
                          stall_count=stalls)


class WrongSumMutant(_ExactBase):
    """Elementwise wrong: flips the LSB whenever bit 3 of ``a`` is set."""

    def run(self, pairs):
        res = super().run(pairs)
        res.sums = [s ^ 1 if (a >> 3) & 1 else s
                    for s, (a, _) in zip(res.sums, pairs)]
        return res


# ----------------------------------------------------------------------
def test_clean_run_passes_and_counts_coverage():
    ctx = RunContext(seed=7, label="test")
    registry = MetricsRegistry()
    verifier = DifferentialVerifier(WIDTH, window=WINDOW, ctx=ctx,
                                    registry=registry)
    streams = ("uniform", "adversarial", "boundary")
    report = verifier.run(vectors=400, streams=streams, chunk=128)

    assert report.ok
    assert report.mismatch_count == 0 and not report.discrepancies
    n_impls = len(default_implementations(WIDTH))
    assert len(report.coverage) == n_impls
    for cov in report.coverage:
        assert cov.vectors == 400 * len(streams)
        assert set(cov.per_stream) == set(streams)
    # The uniform rate checks ran: reference error+flag, plus one per
    # exact-family implementation.
    names = {rc.name for rc in report.rate_checks}
    assert {"error_rate/reference", "detector_rate/reference"} <= names
    assert "detector_rate/machine" in names
    # Instrumentation reached both the context and the registry.
    assert ctx.counters["verify_vectors"] == 400 * len(streams) * n_impls
    assert ctx.counters["verify_mismatches"] == 0
    assert registry.counter("verify_vectors_total", "").value > 0
    assert registry.counter("verify_mismatches_total", "").value == 0


def test_report_is_json_serialisable():
    report = DifferentialVerifier(WIDTH, window=WINDOW).run(
        vectors=64, streams=("uniform",))
    blob = json.dumps(report.as_dict())
    parsed = json.loads(blob)
    assert parsed["ok"] is True
    assert parsed["width"] == WIDTH and parsed["window"] == WINDOW


def test_statistical_mutant_caught_without_any_mismatch(mutant_registry):
    """The acceptance-criterion mutation test.

    The mutant's sums are all exact, so the elementwise oracle is blind;
    the binomial cross-check against the analytic detector rate must be
    what fails the run.
    """
    mutant_registry("mutant:lazy", LazyDetectorMutant)
    registry = MetricsRegistry()
    verifier = DifferentialVerifier(
        WIDTH, window=WINDOW, impls=("functional", "mutant:lazy"),
        registry=registry)
    report = verifier.run(vectors=4000, streams=("uniform",))

    assert report.mismatch_count == 0          # sums were perfect ...
    assert not report.ok                        # ... and it still failed
    bad = [rc for rc in report.stat_failures]
    assert bad and all(rc.name == "detector_rate/mutant:lazy"
                       for rc in bad)
    assert registry.counter("verify_stat_failures_total", "").value >= 1


def test_elementwise_mutant_yields_shrunk_reproducer(mutant_registry):
    mutant_registry("mutant:sum", WrongSumMutant)
    verifier = DifferentialVerifier(WIDTH, window=WINDOW,
                                    impls=("mutant:sum",))
    report = verifier.run(vectors=300, streams=("uniform",), seed=5)

    assert not report.ok and report.mismatch_count > 0
    disc = next(d for d in report.discrepancies if d.kind == "sum")
    assert disc.impl == "mutant:sum" and disc.stream == "uniform"
    # The recorded vector triggers the bug condition ...
    assert (disc.a >> 3) & 1
    # ... and the minimised reproducer still does, at minimal weight.
    assert disc.shrunk_a is not None
    assert (disc.shrunk_a >> 3) & 1
    assert bin(disc.shrunk_a).count("1") == 1 and disc.shrunk_b == 0
    # Replaying the reproducer through the mutant re-triggers the bug.
    impl = make_implementation("mutant:sum", WIDTH, WINDOW)
    res = impl.run([(disc.shrunk_a, disc.shrunk_b)])
    assert res.sums[0] != (disc.shrunk_a + disc.shrunk_b) & 0xFFFF


def test_registry_lists_builtins_and_rejects_unknown():
    names = available_implementations()
    for expected in ("functional", "interpreter", "machine",
                     "service:bigint", "engine:bigint"):
        assert expected in names
    with pytest.raises(KeyError, match="no implementation registered"):
        make_implementation("nonsense", WIDTH, WINDOW)
    with pytest.raises(ValueError, match="refusing"):
        unregister_implementation("functional")


def test_mutants_never_leak_into_defaults(mutant_registry):
    mutant_registry("mutant:leak", WrongSumMutant)
    assert "mutant:leak" in available_implementations()
    assert "mutant:leak" not in default_implementations(WIDTH)


def test_wide_widths_drop_the_machine_word_executor():
    assert "service:numpy" in default_implementations(64)
    assert "service:numpy" not in default_implementations(128)


def test_verification_error_carries_the_report(mutant_registry):
    mutant_registry("mutant:sum2", WrongSumMutant)
    report = DifferentialVerifier(WIDTH, window=WINDOW,
                                  impls=("mutant:sum2",)).run(
        vectors=200, streams=("uniform",))
    err = VerificationError(report)
    assert err.report is report
    assert "mismatches" in str(err)
