"""Property tests for the verification vector streams and the shrinker."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.mc.fastsim import longest_propagate_run
from repro.verify import STREAMS, boundary_patterns, pair_stream, shrink_pair


def collect(name, width, window, count, seed, **kw):
    return [p for chunk in pair_stream(name, width, window, count,
                                       seed=seed, **kw) for p in chunk]


seeded_streams = st.sampled_from([s for s in STREAMS if s != "attack"])


@given(name=seeded_streams,
       width=st.integers(min_value=1, max_value=96),
       count=st.integers(min_value=0, max_value=64),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_streams_are_reproducible_and_in_range(name, width, count, seed):
    window = max(1, min(8, width))
    first = collect(name, width, window, count, seed)
    second = collect(name, width, window, count, seed)
    assert first == second, "same (name,width,window,count,seed) must replay"
    assert len(first) == count
    mask = (1 << width) - 1
    for a, b in first:
        assert 0 <= a <= mask and 0 <= b <= mask


@given(name=seeded_streams,
       width=st.integers(min_value=4, max_value=64),
       seed=st.integers(min_value=0, max_value=2**16))
def test_chunking_does_not_change_the_sequence(name, width, seed):
    window = min(4, width)
    whole = collect(name, width, window, 50, seed, chunk=4096)
    chunked = collect(name, width, window, 50, seed, chunk=7)
    assert whole == chunked


@given(width=st.integers(min_value=1, max_value=128),
       window=st.integers(min_value=1, max_value=24),
       seed=st.integers(min_value=0, max_value=2**16))
def test_adversarial_always_contains_window_run(width, window, seed):
    run = min(window, width)
    for a, b in collect("adversarial", width, window, 40, seed):
        assert longest_propagate_run(a, b, width) >= run


def test_uniform_and_biased_differ_by_seed():
    assert (collect("uniform", 64, 8, 32, seed=1)
            != collect("uniform", 64, 8, 32, seed=2))
    assert (collect("biased", 64, 8, 32, seed=1)
            != collect("biased", 64, 8, 32, seed=2))


def test_boundary_is_deterministic_and_covers_the_vocabulary():
    pats = boundary_patterns(16, 4)
    assert 0 in pats and (1 << 16) - 1 in pats
    want = len(pats) ** 2
    pairs = collect("boundary", 16, 4, want, seed=0)
    assert pairs == collect("boundary", 16, 4, want, seed=99)  # seed-free
    assert set(pairs) == set(itertools.product(pats, pats))


def test_biased_streams_shift_bit_density():
    dense = collect("biased", 64, 8, 200, seed=3, alpha=0.9)
    sparse = collect("biased", 64, 8, 200, seed=3, alpha=0.1)
    ones = lambda ps: sum(bin(a).count("1") + bin(b).count("1")  # noqa: E731
                          for a, b in ps)
    assert ones(dense) > ones(sparse)


# ----------------------------------------------------------------------
# Shrinker properties
# ----------------------------------------------------------------------
def _weight(a, b):
    return bin(a).count("1") + bin(b).count("1")


@given(a=st.integers(min_value=0, max_value=2**32 - 1),
       b=st.integers(min_value=0, max_value=2**32 - 1),
       bit=st.integers(min_value=0, max_value=31))
def test_shrunk_pair_still_fails(a, b, bit):
    # Predicate: "bit `bit` of a^b is set" — shrinking must preserve it.
    def fails(x, y):
        return bool(((x ^ y) >> bit) & 1)

    if not fails(a, b):
        a ^= 1 << bit  # flip so a^b definitely has the bit set
    sa, sb = shrink_pair(fails, a, b, 32)
    assert fails(sa, sb)
    assert _weight(sa, sb) <= _weight(a, b)


@given(a=st.integers(min_value=1, max_value=2**24 - 1))
def test_shrinker_reaches_a_minimal_witness(a):
    # "a is nonzero" shrinks to a single bit.
    sa, sb = shrink_pair(lambda x, y: x != 0, a, 0, 24)
    assert sa != 0 and bin(sa).count("1") == 1 and sb == 0


def test_shrinker_never_returns_a_non_failing_pair():
    # A predicate nothing smaller satisfies: the exact pair only.
    target = (0xDEAD, 0xBEEF)

    def fails(x, y):
        return (x, y) == target

    assert shrink_pair(fails, *target, 16) == target
