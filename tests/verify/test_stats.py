"""Unit tests for the binomial rate-check machinery."""

import math

import pytest

from repro.verify import binomial_bounds, check_rate, wilson_interval
from repro.verify.stats import COUNT_SLACK


class TestBinomialBounds:
    def test_centred_on_mean(self):
        lo, hi = binomial_bounds(0.5, 10000, z=5.0)
        assert lo < 5000 < hi
        assert math.isclose((lo + hi) / 2, 5000, rel_tol=1e-9)

    def test_width_scales_with_sigma(self):
        lo, hi = binomial_bounds(0.5, 10000, z=5.0)
        sigma = math.sqrt(10000 * 0.25)
        assert math.isclose(hi - lo, 2 * (5.0 * sigma + COUNT_SLACK))

    def test_clamped_to_valid_counts(self):
        lo, hi = binomial_bounds(0.0001, 100, z=5.0)
        assert lo == 0.0
        lo, hi = binomial_bounds(0.9999, 100, z=5.0)
        assert hi == 100.0

    def test_degenerate_p(self):
        assert binomial_bounds(0.0, 1000)[0] == 0.0
        assert binomial_bounds(1.0, 1000)[1] == 1000.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            binomial_bounds(1.5, 100)
        with pytest.raises(ValueError):
            binomial_bounds(0.5, -1)

    def test_slack_admits_small_counts(self):
        # With n·p ~ 0.1 the normal bound alone would be razor thin; the
        # additive slack keeps a correct implementation's 1-2 observed
        # events inside the interval.
        lo, hi = binomial_bounds(0.001, 100, z=5.0)
        assert lo == 0.0 and hi >= 2.0


class TestWilson:
    def test_contains_observed_rate(self):
        lo, hi = wilson_interval(300, 1000, z=3.0)
        assert lo < 0.3 < hi

    def test_bounded_in_unit_interval(self):
        assert wilson_interval(0, 50)[0] == 0.0
        lo, hi = wilson_interval(50, 50)
        assert 0.0 <= lo <= hi <= 1.0

    def test_empty_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)


class TestCheckRate:
    def test_pass_and_fail(self):
        ok = check_rate("r", "uniform", 5000, 10000, 0.5)
        assert ok.ok and math.isclose(ok.rate, 0.5)
        bad = check_rate("r", "uniform", 9000, 10000, 0.5)
        assert not bad.ok

    def test_as_dict_roundtrips(self):
        d = check_rate("detector_rate/x", "uniform", 10, 100, 0.1).as_dict()
        assert d["name"] == "detector_rate/x"
        assert d["observed"] == 10 and d["trials"] == 100
        assert d["ok"] is True
        assert 0.0 <= d["wilson_lo"] <= d["wilson_hi"] <= 1.0

    def test_zero_trials_never_flags(self):
        assert check_rate("r", "uniform", 0, 0, 0.3).ok
