"""The formal verification method: proofs, certificates, reports."""

import json

import pytest

from repro.circuit import Circuit
from repro.circuit.netlist import CircuitError
from repro.families.base import family_names, get_family
from repro.verify import VERIFY_METHODS, ProofCertificate, VerifyReport
from repro.verify.formal import (
    OBLIGATIONS,
    prove_datapath,
    run_formal,
    tier1_param_points,
)


# ------------------------------------------------------------ proof matrix
@pytest.mark.parametrize("name", family_names())
def test_run_formal_proves_family_at_16(name):
    report = run_formal(families=[name], width=16)
    assert report.ok, report.describe()
    assert report.method == "formal"
    assert report.family == name
    points = tier1_param_points(name, 16)
    assert len(report.proofs) == len(points) * len(OBLIGATIONS)
    assert {p.obligation for p in report.proofs} == set(OBLIGATIONS)
    assert all(p.status == "proved" for p in report.proofs)
    assert not report.refuted_proofs


def test_run_formal_all_families_pinned_window():
    report = run_formal(width=12, window=4)
    assert report.ok, report.describe()
    assert report.family == "all"
    assert {p.family for p in report.proofs} == set(family_names())
    # One pinned point per family, every obligation discharged.
    assert len(report.proofs) == len(family_names()) * len(OBLIGATIONS)


def test_counts_are_exact_integers_not_floats():
    report = run_formal(families=["aca"], width=10, window=3)
    counted = {p.obligation: p for p in report.proofs}
    for ob in ("error_count", "flag_count"):
        cert = counted[ob]
        assert isinstance(cert.counted, int)
        assert isinstance(cert.expected_count, int)
        assert cert.counted == cert.expected_count
    # ACA's window detector is conservative: flags dominate errors.
    assert counted["flag_count"].counted >= counted["error_count"].counted


def test_tier1_param_points_resolved_and_deduplicated():
    for name in family_names():
        points = tier1_param_points(name, 16)
        assert points, name
        keys = [tuple(sorted(p.items())) for p in points]
        assert len(keys) == len(set(keys)), f"{name}: duplicate points"
        fam = get_family(name)
        for params in points:
            # Each point is already in resolved (fixed-point) form.
            assert fam.resolve_params(16, **params) == params


def test_prove_datapath_rejects_partial_interface():
    c = Circuit("half")
    a = c.add_input_bus("a", 4)
    b = c.add_input_bus("b", 4)
    c.set_output("sum", [c.add_gate("XOR", x, y) for x, y in zip(a, b)])
    with pytest.raises(CircuitError, match="lacks output"):
        prove_datapath(c)


# ---------------------------------------------------- report integration
def test_certificate_round_trips_through_json():
    report = run_formal(families=["cesa"], width=8, window=4)
    blob = json.loads(json.dumps(report.as_dict()))
    assert blob["method"] == "formal"
    assert len(blob["proofs"]) == len(report.proofs)
    for raw, cert in zip(blob["proofs"], report.proofs):
        assert raw["obligation"] == cert.obligation
        assert raw["status"] == "proved"
        assert raw["engine"] == "robdd"
        assert raw["variable_order"] == "interleaved"
        assert raw["width"] == 8


def test_report_render_mentions_proofs():
    report = run_formal(families=["aca"], width=8, window=2)
    text = report.render()
    assert "Formal proofs" in text
    assert "0 refuted proofs" in text
    assert report.describe().startswith("PASS")


def test_refuted_proof_fails_the_report():
    report = VerifyReport(width=8, window=2, seed=0, method="formal")
    report.proofs.append(ProofCertificate(
        family="aca", width=8, params={"window": 2},
        obligation="recovery_sum", status="refuted", circuit="x",
        counterexample={"a": 3, "b": 5}))
    assert not report.ok
    assert report.refuted_proofs
    assert "REFUTED" in report.render()
    assert "FAIL" in report.describe()


# ------------------------------------------------------------------- CLI
def test_cli_formal_method_writes_certificates(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["verify", "--method", "formal", "--family", "all",
                 "--width", "12"]) == 0
    out = capsys.readouterr().out
    assert "Formal proofs" in out and "PASS" in out
    blob = json.loads((tmp_path / "verify_report.json").read_text())
    assert blob["method"] == "formal"
    assert blob["ok"]
    assert {p["family"] for p in blob["proofs"]} == set(family_names())
    # The manifest records the proof-matrix counters.
    manifest = json.loads((tmp_path / "verify_manifest.json").read_text())
    assert manifest["counters"]["formal_obligations"] == len(blob["proofs"])
    assert manifest["counters"]["formal_refuted"] == 0


def test_cli_family_all_requires_formal_method(capsys):
    from repro.cli import main

    assert main(["verify", "--family", "all", "--vectors", "10",
                 "--no-save"]) == 2
    assert "only supported" in capsys.readouterr().err


def test_method_merge_orders_by_strength():
    stat = VerifyReport(width=8, window=2, seed=0, method="statistical")
    formal = run_formal(families=["aca"], width=8, window=2)
    stat.merge(formal)
    assert stat.method == "statistical+formal"
    assert stat.proofs  # certificates carried over
    assert tuple(sorted(VERIFY_METHODS)) == (
        "exhaustive", "formal", "statistical")
