"""Mutation testing at the proof level.

The statistical verifier catches an injected detector bug only
*probabilistically* (a rate check several sigma out, given enough
vectors).  Here we assert something strictly stronger: for each known-bug
mutant in :data:`repro.verify.formal.MUTANTS`, the formal prover refutes
exactly the obligations the bug breaks — deterministically, with a
concrete counterexample operand pair, and independent of any vector
stream — while the obligations the bug does *not* touch still prove.
"""

import pytest

from repro.families.base import get_family
from repro.verify.formal import MUTANTS, OBLIGATIONS, prove_datapath

WIDTH, WINDOW = 16, 4

#: mutant name -> obligations its bug must break (and nothing else).
EXPECTED_REFUTED = {
    "lazy_detector": {"detector_sound", "flag_count"},
    "dropped_recovery_carry": {"recovery_sum"},
}


def _prove_mutant(name):
    fam = get_family("aca")
    params = fam.resolve_params(WIDTH, window=WINDOW)
    model = fam.error_model(WIDTH, **params)
    datapath = MUTANTS[name](WIDTH, WINDOW)
    return prove_datapath(datapath, model=model, family="aca",
                          params=params)


def test_mutant_registry_covers_detector_and_recovery():
    assert set(MUTANTS) == set(EXPECTED_REFUTED)


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_is_refuted_exactly_where_broken(name):
    certs = _prove_mutant(name)
    by_status = {c.obligation: c.status for c in certs}
    refuted = {ob for ob, st in by_status.items() if st == "refuted"}
    assert refuted == EXPECTED_REFUTED[name], by_status
    # The untouched obligations still prove — the refutation is
    # pinpointed, not collateral.
    assert all(st == "proved" for ob, st in by_status.items()
               if ob not in refuted)


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_refutations_carry_deterministic_counterexamples(name):
    first = _prove_mutant(name)
    second = _prove_mutant(name)
    refuted_first = [c for c in first if not c.ok]
    refuted_second = [c for c in second if not c.ok]
    assert refuted_first, "mutant was not refuted at all"
    for c1, c2 in zip(refuted_first, refuted_second):
        assert c1.obligation == c2.obligation
        if c1.obligation in ("recovery_sum", "recovery_cout",
                             "core_consistent", "detector_sound"):
            assert c1.counterexample is not None
            # Bit-for-bit identical witness on an independent rebuild.
            assert c1.counterexample == c2.counterexample
            assert c1.detail and c1.detail == c2.detail


def test_lazy_detector_counterexample_is_a_real_missed_error():
    certs = _prove_mutant("lazy_detector")
    cex = next(c.counterexample for c in certs
               if c.obligation == "detector_sound")
    a, b = cex["a"], cex["b"]
    fam = get_family("aca")
    params = fam.resolve_params(WIDTH, window=WINDOW)
    functional = fam.functional(WIDTH, **params)
    # The witness is an operand pair the speculative core really gets
    # wrong — and the *correct* detector does flag it.
    assert not functional.is_correct(a, b)
    assert functional.flags_error(a, b)


def test_dropped_carry_counterexample_actually_carries():
    certs = _prove_mutant("dropped_recovery_carry")
    cex = next(c.counterexample for c in certs
               if c.obligation == "recovery_sum")
    a, b = cex["a"], cex["b"]
    # The bug drops the carry into the second window-wide block, so the
    # witness must produce a carry out of the first block.
    mask = (1 << WINDOW) - 1
    assert (a & mask) + (b & mask) > mask


def test_unmutated_datapath_is_the_control():
    """The same proof battery passes on the genuine generator output."""
    fam = get_family("aca")
    params = fam.resolve_params(WIDTH, window=WINDOW)
    certs = prove_datapath(
        fam.build_circuit(WIDTH, **params),
        spec_core=fam.build_speculative(WIDTH, **params),
        model=fam.error_model(WIDTH, **params),
        family="aca", params=params)
    assert [c.obligation for c in certs] == list(OBLIGATIONS)
    assert all(c.ok for c in certs), [c.describe() for c in certs]
