"""The ``service:autotuned`` implementation in the verify registry.

Mid-stream reconfigurations must be invisible in sums/couts: the
autotuned executor is held to the same bit-identical standard as the
exact reference, across whatever schedule the controller picks.
"""

from repro.verify import (
    DifferentialVerifier,
    available_implementations,
    default_implementations,
)


def test_autotuned_is_registered_but_not_default():
    assert "service:autotuned" in available_implementations()
    for width in (16, 32, 64):
        assert "service:autotuned" not in default_implementations(width)


def test_autotuned_bit_identical_to_service_numpy():
    verifier = DifferentialVerifier(
        32, window=8, impls=["service:numpy", "service:autotuned"])
    report = verifier.run(vectors=600,
                          streams=("uniform", "adversarial", "boundary"),
                          chunk=200)
    assert report.ok
    assert report.mismatch_count == 0
    cov = {c.impl: c for c in report.coverage}
    assert cov["service:autotuned"].vectors == 600 * 3
    # The autotuned path must actually have reconfigured at least once
    # on this mixed stream (adversarial chunks force the window up).
    impl = next(i for i in verifier.impls
                if i.name == "service:autotuned")
    assert impl.executor.controller.ops_seen == 600 * 3
