"""Exhaustive small-width sweeps: brute force versus the analytic model.

For every operand pair of a small width (``4^n`` of them) every
registered implementation must agree with the reference, and the total
speculative-error / detector-fire counts must equal the analytic
predictions *exactly* (integer equality — no statistics involved).

Tier-1 runs a subsampled grid (widths <= 5, complete); the full
``n <= 8`` grid over every window and every implementation pair runs
nightly (``REPRO_NIGHTLY=1``).
"""

import pytest

from repro.testing import nightly_enabled
from repro.verify import default_implementations, run_exhaustive

nightly = pytest.mark.skipif(
    not nightly_enabled(),
    reason="nightly-only (set REPRO_NIGHTLY=1 to run)")


def _assert_grid_clean(report):
    assert report.mismatch_count == 0, report.render()
    assert report.ok, report.render()
    for cell in report.exhaustive:
        assert cell.complete
        assert cell.pairs == 4 ** cell.width
        assert cell.expected_error_count is not None
        assert cell.error_count == cell.expected_error_count
        assert cell.flag_count == cell.expected_flag_count


@pytest.mark.parametrize("width", [2, 3, 4])
def test_exhaustive_tiny_widths_all_windows(width):
    report = run_exhaustive([width], shrink=False)
    _assert_grid_clean(report)
    assert len(report.exhaustive) == width  # every window 1..n


def test_exhaustive_width5_subsampled_windows():
    # Width 5 is 1024 pairs/cell; two representative windows keep the
    # tier-1 cost low while still exercising a mid and an anchored case.
    report = run_exhaustive([5], windows=[2, 5])
    _assert_grid_clean(report)


def test_exhaustive_covers_every_builtin_pair():
    report = run_exhaustive([3], windows=[2])
    assert sorted(report.impls) == default_implementations(3)
    for cov in report.coverage:
        assert cov.vectors == 4 ** 3


def test_window_wider_than_width_is_skipped():
    report = run_exhaustive([3], windows=[4])
    assert not report.exhaustive


@nightly
@pytest.mark.parametrize("width", [5, 6, 7, 8])
def test_exhaustive_full_grid_nightly(width):
    report = run_exhaustive([width], shrink=False)
    _assert_grid_clean(report)
    assert len(report.exhaustive) == width
