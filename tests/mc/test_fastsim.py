"""Fast functional model: bit-trick identities and sampling."""

import pytest
from hypothesis import given, strategies as st

from repro.adders import reference_add
from repro.analysis import aca_error_probability, detector_flag_probability
from repro.mc import (
    AcaModel,
    aca_add,
    aca_is_correct,
    carry_word,
    detector_flag,
    generate_word,
    longest_propagate_run,
    propagate_word,
    sample_detector_rate,
    sample_error_rate,
    window_all_ones,
)

W16 = st.integers(0, 2**16 - 1)


@given(a=W16, b=W16, cin=st.integers(0, 1))
def test_carry_word_identity(a, b, cin):
    """Bit i of carry_word is the carry into bit i of a + b + cin."""
    c = carry_word(a, b, 16, cin)
    carry = cin
    for i in range(17):
        assert (c >> i) & 1 == carry, i
        if i < 16:
            ai, bi = (a >> i) & 1, (b >> i) & 1
            carry = (ai & bi) | (ai & carry) | (bi & carry)


@given(word=st.integers(0, 2**24 - 1), window=st.integers(1, 10))
def test_window_all_ones_matches_scan(word, window):
    got = window_all_ones(word, window)
    for i in range(24):
        expect = all((word >> (i + j)) & 1 for j in range(window))
        assert ((got >> i) & 1) == int(expect)


def test_window_all_ones_validation():
    with pytest.raises(ValueError):
        window_all_ones(5, 0)


@given(a=W16, b=W16)
def test_pg_words(a, b):
    assert propagate_word(a, b, 16) == (a ^ b) & 0xFFFF
    assert generate_word(a, b, 16) == (a & b) & 0xFFFF


@given(a=W16, b=W16, window=st.integers(1, 17), cin=st.integers(0, 1))
def test_correctness_predicate_matches_explicit_add(a, b, window, cin):
    """aca_is_correct <=> aca_add equals exact addition (incl. cout)."""
    s, cout = aca_add(a, b, 16, window, cin)
    ref = reference_add(16, a, b, cin)
    explicit = (s == ref["sum"] and cout == ref["cout"])
    assert explicit == aca_is_correct(a, b, 16, window, cin)


@given(a=W16, b=W16, window=st.integers(1, 16))
def test_detector_conservative(a, b, window):
    if not detector_flag(a, b, 16, window):
        assert aca_is_correct(a, b, 16, window)


@given(a=W16, b=W16)
def test_longest_propagate_run_is_xor_run(a, b):
    from repro.analysis import longest_run_of_ones

    assert longest_propagate_run(a, b, 16) == (
        longest_run_of_ones((a ^ b) & 0xFFFF))


def test_aca_add_window_validation():
    with pytest.raises(ValueError):
        aca_add(1, 2, 8, 0)


def test_aca_add_known_example():
    """The paper's framing: spec carry = generate of the w-bit window."""
    # a=0111, b=0001 at window 2: true sum 1000; the carry from bit 0
    # dies at the window boundary, so the spec sum misses the high bit.
    s, cout = aca_add(0b0111, 0b0001, 4, 2)
    assert (s, cout) == (0b0000, 0)
    assert not aca_is_correct(0b0111, 0b0001, 4, 2)
    # window 4 covers everything -> exact
    s, cout = aca_add(0b0111, 0b0001, 4, 4)
    assert (s, cout) == (0b1000, 0)


def test_model_wrapper(rng):
    model = AcaModel(24, 6)
    for _ in range(200):
        a, b = rng.getrandbits(24), rng.getrandbits(24)
        assert model.add(a, b) == aca_add(a, b, 24, 6)
        assert model.exact(a, b) == (
            (a + b) & 0xFFFFFF, (a + b) >> 24)
        assert model.is_correct(a, b) == aca_is_correct(a, b, 24, 6)
        assert model.flags_error(a, b) == detector_flag(a, b, 24, 6)
        if model.flags_error(a, b) is False:
            assert model.is_correct(a, b)


def test_sampled_rates_match_exact_models():
    n, w = 32, 6
    p_err = aca_error_probability(n, w)
    p_flag = detector_flag_probability(n, w)
    mc_err = sample_error_rate(n, w, samples=40000, seed=1)
    mc_flag = sample_detector_rate(n, w, samples=40000, seed=1)
    assert mc_err == pytest.approx(p_err, rel=0.25)
    assert mc_flag == pytest.approx(p_flag, rel=0.25)
    assert mc_err <= mc_flag


def test_sampling_supports_wide_operands():
    rate = sample_error_rate(200, 4, samples=2000, seed=0)
    assert 0.0 < rate < 1.0
