"""End-to-end gate acceptance: the CLI catches a synthetic regression.

The ISSUE-5 acceptance criterion, verbatim: a test monkeypatches a 2x
sleep into one benchmark payload and asserts ``bench gate`` exits 1
with that benchmark named ``regressed``, while an unmodified
back-to-back run on the same host gates green.

A private ``toy`` suite of sleep-based benchmarks is registered for
the duration of each test (sleeps are the most run-to-run stable
payloads available, so the green path is not flaky), and
``REPRO_RESULTS_DIR`` is pointed at a tmp dir so no repository
results/baselines are touched.
"""

import json
import os
import time

import pytest

from repro.bench import Benchmark, registry
from repro.cli import main

#: Per-benchmark sleep seconds; tests mutate this to inject slowdowns.
_SLEEP = {}

_BASE_S = 0.002
_GATE_ARGS = ["--samples", "6", "--target-time", "0.005"]


def _toy_suite(preset):
    def mk(name):
        def payload(_state, name=name):
            time.sleep(_SLEEP[name])

        return Benchmark(name=name, suite="toy", payload=payload,
                         ops_per_call=1, samples=6, calibrate=False)

    return [mk(name) for name in sorted(_SLEEP)]


@pytest.fixture
def toy(monkeypatch, tmp_path):
    _SLEEP.clear()
    _SLEEP.update(probe_a=_BASE_S, probe_b=_BASE_S)
    registry.add_suite("toy", _toy_suite)
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    yield tmp_path
    registry.remove_suite("toy")


def _gate(extra=()):
    return main(["bench", "gate", "--suite", "toy", *_GATE_ARGS, *extra])


def _summary(tmp_path):
    with open(os.path.join(tmp_path, "bench_summary.md"),
              encoding="utf-8") as f:
        return f.read()


def test_gate_green_then_catches_2x_sleep_regression(toy, capsys):
    # Establish a baseline, then gate an unmodified back-to-back run:
    # same host, same payloads -> green, exit 0.
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS]) == 0
    assert main(["bench", "promote", "--suite", "toy"]) == 0
    assert _gate() == 0
    summary = _summary(toy)
    assert "PASS" in summary and "regressed" not in summary

    # Inject the synthetic regression: probe_b's payload now sleeps 2x.
    _SLEEP["probe_b"] = 2 * _BASE_S
    capsys.readouterr()
    assert _gate() == 1
    out = capsys.readouterr().out
    summary = _summary(toy)
    assert "FAIL" in summary
    assert "| `probe_b` | 🔴 regressed |" in summary
    assert "| `probe_a` | 🔴" not in summary
    assert "regressed" in out

    # Reverting the slowdown gates green again (noise didn't latch).
    _SLEEP["probe_b"] = _BASE_S
    assert _gate() == 0


def test_gate_fails_without_baseline_unless_allowed(toy):
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS]) == 0
    with pytest.raises(SystemExit, match="no baseline"):
        _gate(["--no-run"])
    assert _gate(["--no-run", "--allow-missing-baseline"]) == 0


def test_compare_verb_is_informational(toy, capsys):
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS]) == 0
    assert main(["bench", "promote", "--suite", "toy"]) == 0
    _SLEEP["probe_a"] = 3 * _BASE_S
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS]) == 0
    # compare reports the regression but always exits 0.
    capsys.readouterr()
    assert main(["bench", "compare", "--suite", "toy"]) == 0
    assert "regressed" in capsys.readouterr().out


def test_improvement_does_not_fail_the_gate(toy):
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS]) == 0
    assert main(["bench", "promote", "--suite", "toy"]) == 0
    _SLEEP["probe_a"] = _BASE_S / 2
    assert _gate() == 0
    assert "improved" in _summary(toy)


def test_run_writes_schema_valid_json_and_trend(toy):
    trend = os.path.join(toy, "trend.jsonl")
    assert main(["bench", "run", "--suite", "toy", *_GATE_ARGS,
                 "--trend", trend]) == 0
    from repro.bench import load_suite_result

    payload = load_suite_result(os.path.join(toy, "BENCH_toy.json"))
    assert payload["suite"] == "toy"
    assert {b["name"] for b in payload["benchmarks"]} == {"probe_a",
                                                          "probe_b"}
    with open(trend, encoding="utf-8") as f:
        lines = [json.loads(line) for line in f]
    assert lines and lines[0]["suite"] == "toy"
    assert "probe_a" in lines[0]["benchmarks"]


def test_bench_list_names_all_builtin_suites(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for suite in ("engine", "service", "verify", "cluster"):
        assert suite in out
    assert "loadgen_uniform_w64" in out
