"""Runner calibration/measurement discipline and the shared schema.

Covers the satellite checklist: warmup calls excluded from samples,
repeat auto-scaling landing in the target-duration window, every
registered suite's JSON validating against the shared schema, and the
host manifest fields being present.
"""

import time

import pytest

from repro.bench import (Benchmark, MetricBand, RunnerConfig, SchemaError,
                         build_payload, host_manifest, load_builtin_suites,
                         registry, run_benchmark, validate_payload)


def counting_benchmark(cost_s=0.0, name="probe", **kw):
    """A benchmark whose payload records every invocation."""
    calls = []

    def payload(state):
        calls.append(time.perf_counter())
        if cost_s:
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < cost_s:
                pass
        return len(calls)

    bench = Benchmark(name=name, suite="toy", payload=payload, **kw)
    return bench, calls


# ----------------------------------------------------------------- runner

def test_warmup_calls_are_excluded_from_samples():
    bench, calls = counting_benchmark()
    config = RunnerConfig(warmup=3, samples=4, target_time=0.001,
                          max_repeats=4)
    res = run_benchmark(bench, config)
    assert res.warmup_calls == 3
    assert len(res.samples_s_per_call) == 4
    # Total payload invocations: warmup + calibration probes +
    # samples * repeats; the timed samples never include the warmup
    # share, so invocations strictly exceed samples * repeats.
    assert len(calls) >= 3 + 4 * res.inner_repeats


def test_calibration_hits_the_target_duration_window():
    cost = 0.0004
    bench, _ = counting_benchmark(cost_s=cost)
    config = RunnerConfig(target_time=0.05, samples=3)
    res = run_benchmark(bench, config)
    batch = res.median_s_per_call * res.inner_repeats
    lo = config.target_time / config.window_factor
    hi = config.target_time * config.window_factor
    assert lo <= batch <= hi, (
        f"calibrated batch {batch:.4f}s outside [{lo:.4f}, {hi:.4f}]s")
    # And the per-call estimate reflects the true payload cost.
    assert res.median_s_per_call == pytest.approx(cost, rel=0.5)


def test_calibration_skipped_for_long_benchmarks():
    bench, calls = counting_benchmark(cost_s=0.002, calibrate=False,
                                      samples=2)
    res = run_benchmark(bench, RunnerConfig(warmup=1))
    assert res.inner_repeats == 1
    assert len(res.samples_s_per_call) == 2
    assert len(calls) == 1 + 2   # warmup + one call per sample


def test_setup_runs_once_and_feeds_payload():
    seen = []

    def setup():
        seen.append("setup")
        return {"token": 42}

    def payload(state):
        assert state == {"token": 42}
        return state

    bench = Benchmark(name="with_setup", suite="toy", payload=payload,
                      setup=setup, samples=3)
    run_benchmark(bench, RunnerConfig(target_time=0.001, max_repeats=2))
    assert seen == ["setup"]


def test_metric_bands_record_violations():
    def payload(state):
        return None

    def derive(state, out):
        return {"measured": 2.0, "expected": 1.0}

    bench = Benchmark(name="banded", suite="toy", payload=payload,
                      derive=derive, samples=1,
                      bands=(MetricBand("measured", "expected", 0.05),))
    res = run_benchmark(bench, RunnerConfig(target_time=0.001,
                                            max_repeats=2))
    assert len(res.band_violations) == 1
    assert "measured" in res.band_violations[0]


def test_host_manifest_fields_present():
    host = host_manifest()
    for key in ("platform", "machine", "python_version", "cpu_count",
                "cpu_affinity", "clock", "pid"):
        assert key in host, key
    assert host["cpu_count"] >= 1
    assert host["clock"]["monotonic"] is True
    assert host["clock"]["resolution_s"] > 0


# ----------------------------------------------------------------- schema

def toy_payload():
    bench, _ = counting_benchmark(samples=2)
    config = RunnerConfig(target_time=0.001, max_repeats=4)
    res = run_benchmark(bench, config)
    return build_payload("toy", "small", [res], config)


def test_build_payload_validates():
    validate_payload(toy_payload())


@pytest.mark.parametrize("mutate,fragment", [
    (lambda p: p.pop("host"), "host"),
    (lambda p: p.update(schema_version=99), "schema_version"),
    (lambda p: p.update(benchmarks=[]), "non-empty"),
    (lambda p: p["benchmarks"][0].pop("samples_s_per_call"),
     "samples_s_per_call"),
    (lambda p: p["benchmarks"][0].update(ci95_s_per_call=[2.0, 1.0]),
     "ci95"),
    (lambda p: p["benchmarks"][0].update(ops_per_call=0), "ops_per_call"),
    (lambda p: p["host"].pop("clock"), "clock"),
    (lambda p: p["benchmarks"][0].update(suite="other"), "suite"),
])
def test_schema_rejects_malformed_payloads(mutate, fragment):
    payload = toy_payload()
    mutate(payload)
    with pytest.raises(SchemaError, match=fragment):
        validate_payload(payload)


def test_schema_rejects_duplicate_benchmark_names():
    payload = toy_payload()
    payload["benchmarks"].append(dict(payload["benchmarks"][0]))
    with pytest.raises(SchemaError, match="duplicate"):
        validate_payload(payload)


# --------------------------------------------------- registered suites

def test_all_registered_suites_load_and_validate():
    """`repro bench list` smoke: every builtin suite instantiates at
    both presets with well-formed benchmarks."""
    load_builtin_suites()
    names = registry.suites()
    assert set(names) >= {"engine", "service", "verify", "cluster"}
    for preset in ("small", "full"):
        for name in names:
            benches = registry.build(name, preset)
            assert benches, (name, preset)
            seen = set()
            for b in benches:
                assert b.suite == name
                assert b.name not in seen
                assert b.ops_per_call >= 1
                seen.add(b.name)


def test_registry_rejects_unknown_suite_and_preset():
    load_builtin_suites()
    with pytest.raises(KeyError, match="unknown suite"):
        registry.build("nonexistent")
    with pytest.raises(ValueError, match="preset"):
        registry.build("engine", "huge")
