"""The regression-detection stats engine against synthetic
distributions.

The contract under test: injected 2x and 1.2x slowdowns must be
flagged ``regressed``, +-3% scheduler-style jitter must stay
``unchanged``, and ``classify(a, a)`` is ``unchanged`` for *any*
sample set (property-tested).  Everything is seeded and deterministic.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.stats import (VERDICT_IMPROVED, VERDICT_REGRESSED,
                               VERDICT_UNCHANGED, bootstrap_ci, classify,
                               mann_whitney_u, median)

SEED = 0xBE7C


def synthetic_samples(n=8, mean=1.0, rel_noise=0.01, seed=SEED):
    """Seeded timing-like samples: positive, small gaussian spread."""
    rng = random.Random(seed)
    return [max(1e-9, mean * (1.0 + rng.gauss(0.0, rel_noise)))
            for _ in range(n)]


# ---------------------------------------------------------------- classify

@pytest.mark.parametrize("factor", [2.0, 1.2])
def test_injected_slowdown_is_flagged_regressed(factor):
    base = synthetic_samples()
    slow = [x * factor for x in synthetic_samples(seed=SEED + 1)]
    comp = classify(base, slow)
    assert comp.verdict == VERDICT_REGRESSED
    assert comp.effect == pytest.approx(factor - 1.0, rel=0.15)
    assert comp.p_value < comp.alpha


@pytest.mark.parametrize("jitter", [0.03, -0.03, 0.0])
def test_small_jitter_is_not_flagged(jitter):
    base = synthetic_samples()
    wiggled = [x * (1.0 + jitter) for x in
               synthetic_samples(seed=SEED + 2)]
    assert classify(base, wiggled).verdict == VERDICT_UNCHANGED


def test_injected_speedup_is_flagged_improved():
    base = synthetic_samples()
    fast = [x / 2.0 for x in synthetic_samples(seed=SEED + 3)]
    assert classify(base, fast).verdict == VERDICT_IMPROVED


def test_threshold_is_configurable():
    base = synthetic_samples(rel_noise=0.001)
    slow = [x * 1.2 for x in synthetic_samples(rel_noise=0.001,
                                               seed=SEED + 4)]
    # 1.2x is a regression at the 10% threshold but not at 30%.
    assert classify(base, slow, threshold=0.10).verdict == VERDICT_REGRESSED
    assert classify(base, slow, threshold=0.30).verdict == VERDICT_UNCHANGED


def test_big_shift_without_significance_stays_unchanged():
    # Two samples a side: the exact Mann-Whitney p-value can never
    # reach alpha, so even a 2x shift must not be flagged — the gate
    # refuses to conclude from statistically hopeless sample counts.
    comp = classify([1.0, 1.01], [2.0, 2.02])
    assert comp.verdict == VERDICT_UNCHANGED
    assert comp.p_value >= comp.alpha


@given(st.lists(st.floats(min_value=1e-9, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=24))
def test_compare_identical_samples_is_always_unchanged(samples):
    comp = classify(samples, list(samples))
    assert comp.verdict == VERDICT_UNCHANGED
    assert comp.effect == 0.0


@given(st.lists(st.floats(min_value=1e-6, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=16),
       st.floats(min_value=2.0, max_value=10.0))
def test_scaling_any_distribution_by_2x_never_reports_improved(xs, k):
    """A uniform slowdown can classify regressed or unchanged (when
    the samples are too noisy/few to be sure) but never improved."""
    comp = classify(xs, [x * k for x in xs])
    assert comp.verdict in (VERDICT_REGRESSED, VERDICT_UNCHANGED)
    assert comp.effect >= 0.0


# ------------------------------------------------------------ mann-whitney

def test_mwu_exact_p_for_fully_separated_samples():
    # n = m = 5 fully separated: one-sided tail 1/C(10,5), two-sided
    # doubles it -> 2/252.
    u, p = mann_whitney_u([6, 7, 8, 9, 10], [1, 2, 3, 4, 5])
    assert u == 25.0
    assert p == pytest.approx(2.0 / 252.0)


def test_mwu_symmetry_and_identical_samples():
    a, b = [1.0, 2.0, 3.0], [1.5, 2.5, 3.5]
    u_ab, p_ab = mann_whitney_u(a, b)
    u_ba, p_ba = mann_whitney_u(b, a)
    assert u_ab + u_ba == pytest.approx(len(a) * len(b))
    assert p_ab == pytest.approx(p_ba)
    _, p_same = mann_whitney_u(a, a)
    assert p_same == 1.0


def test_mwu_all_constant_samples_has_no_evidence():
    _, p = mann_whitney_u([1.0] * 6, [1.0] * 6)
    assert p == 1.0


def test_mwu_normal_approx_agrees_with_exact_on_moderate_n():
    rng = random.Random(SEED)
    a = [rng.gauss(0.0, 1.0) for _ in range(12)]
    b = [rng.gauss(1.2, 1.0) for _ in range(12)]
    _, p_exact = mann_whitney_u(a, b, exact_limit=1000)
    _, p_approx = mann_whitney_u(a, b, exact_limit=0)
    # Deep in the tail the normal approximation is only
    # order-of-magnitude accurate; both must agree on the verdict and
    # stay within a small constant factor.
    assert p_exact < 0.01 and p_approx < 0.01
    assert 1 / 3 < p_exact / p_approx < 3


# --------------------------------------------------------------- bootstrap

def test_bootstrap_ci_brackets_the_mean_and_is_deterministic():
    xs = synthetic_samples(n=16, mean=3.0, rel_noise=0.05)
    lo, hi = bootstrap_ci(xs, seed=7)
    assert lo <= sum(xs) / len(xs) <= hi
    assert (lo, hi) == bootstrap_ci(xs, seed=7)
    assert (lo, hi) != bootstrap_ci(xs, seed=8)


def test_bootstrap_ci_single_sample_is_degenerate():
    assert bootstrap_ci([2.5]) == (2.5, 2.5)


def test_bootstrap_ci_width_shrinks_with_less_noise():
    tight = bootstrap_ci(synthetic_samples(n=12, rel_noise=0.001))
    loose = bootstrap_ci(synthetic_samples(n=12, rel_noise=0.2))
    assert tight[1] - tight[0] < loose[1] - loose[0]


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5
    with pytest.raises(ValueError):
        median([])
