"""Frequency analysis: histograms, chi-squared scoring, corpus."""

import pytest

from repro.apps import (
    ENGLISH_LETTER_FREQ,
    chi_squared_score,
    letter_histogram,
    looks_like_english,
    sample_corpus,
)


def test_reference_table_sanity():
    assert ENGLISH_LETTER_FREQ["e"] == max(ENGLISH_LETTER_FREQ.values())
    assert sum(ENGLISH_LETTER_FREQ.values()) == pytest.approx(100.0, abs=0.5)
    assert ENGLISH_LETTER_FREQ["e"] / ENGLISH_LETTER_FREQ["x"] > 50


def test_letter_histogram():
    hist = letter_histogram(b"Hello, World!!")
    assert hist["l"] == 3
    assert hist["o"] == 2
    assert hist["h"] == 1
    assert "!" not in hist and "," not in hist


def test_english_scores_better_than_garbage():
    english = sample_corpus(2000)
    garbage = bytes((i * 37 + 11) % 256 for i in range(2000))
    uniform_letters = (b"abcdefghijklmnopqrstuvwxyz" * 80)[:2000]
    s_eng = chi_squared_score(english)
    assert s_eng < chi_squared_score(uniform_letters)
    assert s_eng < chi_squared_score(garbage) / 10


def test_looks_like_english_threshold():
    assert looks_like_english(sample_corpus(2000))
    assert not looks_like_english(bytes(range(256)) * 4)


def test_empty_input():
    assert chi_squared_score(b"") == float("inf")
    assert chi_squared_score(b"1234 5678") == float("inf")


def test_sample_corpus_properties():
    corpus = sample_corpus(1500, seed=3)
    assert len(corpus) == 1500
    assert corpus == sample_corpus(1500, seed=3)  # deterministic
    assert corpus != sample_corpus(1500, seed=4)
    assert all(97 <= c <= 122 or c == 32 for c in corpus)


def test_corrupted_corpus_still_scores_ok():
    """A few corrupted blocks cannot shift corpus statistics (the
    paper's core argument for using the ACA in the attack)."""
    corpus = bytearray(sample_corpus(4096))
    for i in range(0, 128, 8):  # corrupt ~3% of the text
        corpus[i] = 0xF7
    clean = chi_squared_score(sample_corpus(4096))
    dirty = chi_squared_score(bytes(corpus))
    garbage = chi_squared_score(bytes((i * 73) % 256 for i in range(4096)))
    assert dirty < garbage / 5
    assert dirty < clean * 10
