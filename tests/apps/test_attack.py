"""Ciphertext-only attack: key recovery with exact and ACA decryption."""

import pytest

from repro.apps import (
    ArxCipher,
    CountingAdder,
    aca_adder,
    exact_adder,
    run_attack,
    sample_corpus,
)


def _setup(key=0x5A, corpus=2048, seed=1):
    plaintext = sample_corpus(corpus, seed=seed)
    ciphertext = ArxCipher(key).encrypt_bytes(plaintext)
    return ciphertext


def test_attack_succeeds_with_exact_adder():
    key = 0x5A
    ct = _setup(key)
    result = run_attack(ct, key, list(range(128)), adder=exact_adder)
    assert result.succeeded
    assert result.rank_of_true_key() == 1
    assert result.wrong_blocks == 0


def test_attack_succeeds_with_aca_adder():
    """The headline claim: speculative decryption corrupts some blocks
    but the frequency ranking still finds the key."""
    key = 0x5A
    ct = _setup(key)
    result = run_attack(ct, key, list(range(128)), adder=aca_adder(8))
    assert result.succeeded
    assert result.wrong_blocks > 0  # errors really happened


def test_true_key_scores_far_better_than_others():
    key = 0x21
    ct = _setup(key)
    result = run_attack(ct, key, [key, 0x22, 0x44, 0x7F])
    scores = {ks.key: ks.score for ks in result.ranking}
    best_wrong = min(v for k, v in scores.items() if k != key)
    assert scores[key] < best_wrong / 3


def test_counting_adder_accounts_costs():
    counter = CountingAdder(exact_adder, latency=0.5)
    assert counter(2, 3) == 5
    assert counter(10, 20) == 30
    assert counter.calls == 2
    assert counter.total_time == pytest.approx(1.0)


def test_attack_add_accounting():
    key = 0x11
    ct = _setup(key, corpus=256)
    candidates = list(range(16))
    result = run_attack(ct, key, candidates)
    blocks = len(ct) // 8
    # 8 rounds x 2 adds per round per block per key, plus the final
    # wrong-block comparison (2 extra decryptions of the corpus).
    expected = 16 * blocks * (8 * 2)
    assert result.adds_performed == expected
    assert result.arithmetic_time == pytest.approx(expected)


def test_rank_of_missing_key_raises():
    key = 0x11
    ct = _setup(key, corpus=256)
    result = run_attack(ct, key, [0x12, 0x13])
    with pytest.raises(ValueError):
        result.rank_of_true_key()
    assert not result.succeeded
