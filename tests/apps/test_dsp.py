"""Soft-DSP FIR workload: raw ACA vs VLSA accumulation.

Documents the workload-dependence finding: signed small-magnitude data
stalls the speculative adder ~15 % of the time (sign-extension propagate
chains), so raw ACA output is badly corrupted while the VLSA variant is
exact at a modest cycle cost.
"""

import pytest

from repro.apps.blockcipher import aca_adder, exact_adder
from repro.apps.dsp import (
    fir_filter,
    moving_average_taps,
    quantize,
    snr_db,
    synth_signal,
    vlsa_fir_filter,
)


def _setup(samples=400):
    signal = quantize(synth_signal(samples, seed=1))
    taps = quantize(moving_average_taps(8))
    return signal, taps


def test_moving_average_taps():
    taps = moving_average_taps(4)
    assert len(taps) == 4
    assert sum(taps) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        moving_average_taps(0)


def test_quantize():
    vals = [0.5, -0.5, 0.25, 1.0, -1.0]
    q = quantize(vals, fractional_bits=12)
    assert q[0] == 0.5 * 4096
    assert q[1] == (-int(0.5 * 4096)) & 0xFFFFFFFF


def test_exact_fir_smooths():
    signal, taps = _setup()
    out = fir_filter(signal, taps)
    assert len(out) == len(signal)

    def wiggle(xs):
        def s32(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v & (1 << 31) else v
        return sum(abs(s32(a) - s32(b)) for a, b in zip(xs, xs[1:]))

    assert wiggle(out[16:]) < wiggle(signal[16:])


def test_raw_aca_fir_is_corrupted_on_signed_data():
    """Sign-extension propagate chains break raw speculation: errors are
    frequent AND large (high-bit carries), so SNR collapses."""
    signal, taps = _setup()
    golden = fir_filter(signal, taps, add=exact_adder)
    approx = fir_filter(signal, taps, add=aca_adder(18))
    corrupted = sum(1 for g, a in zip(golden, approx) if g != a)
    assert corrupted > len(signal) * 0.05
    assert snr_db(golden, approx) < 0.0


def test_vlsa_fir_is_exact():
    signal, taps = _setup()
    golden = fir_filter(signal, taps)
    out, stats = vlsa_fir_filter(signal, taps, window=18)
    assert out == golden
    assert stats.adds > 0


def test_vlsa_fir_stall_rate_is_workload_dependent():
    """The uniform model predicts ~1e-4 stalls at window 18; signed FIR
    data stalls orders of magnitude more often."""
    signal, taps = _setup()
    _, stats = vlsa_fir_filter(signal, taps, window=18)
    assert stats.stall_rate > 0.05
    assert stats.average_latency() == pytest.approx(
        1.0 + stats.stall_rate)
    assert stats.cycles == stats.adds + stats.stalls


def test_wider_window_reduces_stalls():
    signal, taps = _setup(200)
    _, narrow = vlsa_fir_filter(signal, taps, window=12)
    _, wide = vlsa_fir_filter(signal, taps, window=28)
    assert wide.stall_rate <= narrow.stall_rate


def test_snr_edge_cases():
    assert snr_db([1, 2, 3], [1, 2, 3]) == float("inf")
    with pytest.raises(ValueError):
        snr_db([1, 2], [1])
