"""Toy ARX cipher: round-trips, adder injection, padding."""

import pytest

from repro.apps import ArxCipher, aca_adder, exact_adder


def test_block_round_trip(rng):
    cipher = ArxCipher(0xDEADBEEF)
    for _ in range(200):
        block = rng.getrandbits(64)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_bytes_round_trip():
    cipher = ArxCipher(42)
    msg = b"the quick brown fox jumps over the lazy dog!1234"
    assert cipher.decrypt_bytes(cipher.encrypt_bytes(msg)) == msg


def test_padding_applied():
    cipher = ArxCipher(1)
    ct = cipher.encrypt_bytes(b"abc")
    assert len(ct) == 8
    assert cipher.decrypt_bytes(ct).startswith(b"abc")
    with pytest.raises(ValueError):
        cipher.decrypt_bytes(b"short")


def test_different_keys_differ():
    msg = b"same plaintext body okay"
    assert (ArxCipher(1).encrypt_bytes(msg) !=
            ArxCipher(2).encrypt_bytes(msg))


def test_encryption_diffuses(rng):
    cipher = ArxCipher(77)
    block = rng.getrandbits(64)
    flipped = block ^ 1
    diff = cipher.encrypt_block(block) ^ cipher.encrypt_block(flipped)
    assert bin(diff).count("1") > 10  # avalanche


def test_aca_decryption_mostly_correct(rng):
    """Wide-window ACA decryption rarely corrupts a block."""
    cipher = ArxCipher(0xABCD)
    approx = aca_adder(16)
    wrong = 0
    blocks = 300
    for _ in range(blocks):
        block = rng.getrandbits(64)
        ct = cipher.encrypt_block(block)
        if cipher.decrypt_block(ct, add=approx) != block:
            wrong += 1
    assert wrong < blocks * 0.12


def test_aca_decryption_deterministic(rng):
    cipher = ArxCipher(0xABCD)
    approx = aca_adder(6)
    ct = cipher.encrypt_block(rng.getrandbits(64))
    assert (cipher.decrypt_block(ct, add=approx) ==
            cipher.decrypt_block(ct, add=approx))


def test_narrow_window_corrupts_more_than_wide(rng):
    cipher = ArxCipher(99)
    blocks = [rng.getrandbits(64) for _ in range(200)]
    cts = [cipher.encrypt_block(b) for b in blocks]

    def wrong(window):
        add = aca_adder(window)
        return sum(cipher.decrypt_block(ct, add=add) != b
                   for ct, b in zip(cts, blocks))

    assert wrong(4) > wrong(12)


def test_exact_adder_semantics():
    assert exact_adder(0xFFFFFFFF, 1) == 0
    assert exact_adder(5, 7) == 12


def test_rounds_validation():
    with pytest.raises(ValueError):
        ArxCipher(1, rounds=1)
