"""Shared fixtures and hypothesis configuration for the test suite.

The actual seeding/profile logic lives in :mod:`repro.testing` (shared
with ``benchmarks/conftest.py``); this file only binds it to pytest.
"""

import pytest

from repro.testing import make_rng, nightly_enabled, register_hypothesis_profile

register_hypothesis_profile()

#: Skip marker for the long nightly-only tests (full exhaustive grids,
#: million-vector fuzz).  Enable with ``REPRO_NIGHTLY=1``.
nightly = pytest.mark.skipif(
    not nightly_enabled(),
    reason="nightly-only (set REPRO_NIGHTLY=1 to run)")


@pytest.fixture
def rng():
    """Deterministic random generator per test."""
    return make_rng()
