"""Shared fixtures and hypothesis configuration for the test suite."""

import random

import pytest
from hypothesis import HealthCheck, settings

# One conservative profile: deterministic, no deadline (STA on larger
# circuits can take a while on CI boxes), modest example counts.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """Deterministic random generator per test."""
    return random.Random(0xC0FFEE)
