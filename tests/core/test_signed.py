"""Signed adder with overflow flag."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import check_structure, simulate_bus_ints
from repro.core.signed import build_signed_adder, to_signed, to_unsigned

_CACHE = {}


def _adder(width, window):
    key = (width, window)
    if key not in _CACHE:
        c = build_signed_adder(width, window)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


def test_signed_codecs():
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0x7F, 8) == 127
    assert to_signed(0x80, 8) == -128
    assert to_unsigned(-1, 8) == 0xFF
    assert to_unsigned(127, 8) == 0x7F
    assert to_unsigned(-128, 8) == 0x80
    with pytest.raises(ValueError):
        to_unsigned(128, 8)
    with pytest.raises(ValueError):
        to_unsigned(-129, 8)


@given(a=st.integers(-128, 127), b=st.integers(-128, 127))
def test_exact_outputs_and_overflow(a, b):
    c = _adder(8, 3)
    out = simulate_bus_ints(c, {"a": to_unsigned(a, 8),
                                "b": to_unsigned(b, 8)})
    total = a + b
    overflowed = not (-128 <= total <= 127)
    assert out["overflow_exact"] == int(overflowed)
    if not overflowed:
        assert to_signed(out["sum_exact"], 8) == total
    else:
        # Wrapped result, as two's complement hardware produces.
        assert out["sum_exact"] == (to_unsigned(a, 8) +
                                    to_unsigned(b, 8)) & 0xFF


@given(a=st.integers(-2**15, 2**15 - 1), b=st.integers(-2**15, 2**15 - 1))
def test_speculative_guarded(a, b):
    c = _adder(16, 5)
    out = simulate_bus_ints(c, {"a": to_unsigned(a, 16),
                                "b": to_unsigned(b, 16)})
    if not out["err"]:
        assert out["sum"] == out["sum_exact"]
        assert out["overflow"] == out["overflow_exact"]


def test_overflow_cases():
    c = _adder(8, 8)
    cases = [
        (127, 1, True), (-128, -1, True), (127, -1, False),
        (-128, 1, False), (64, 64, True), (-64, -65, True),
        (0, 0, False), (-1, -1, False),
    ]
    for a, b, expect in cases:
        out = simulate_bus_ints(c, {"a": to_unsigned(a, 8),
                                    "b": to_unsigned(b, 8)})
        assert out["overflow_exact"] == int(expect), (a, b)


def test_width_validation():
    with pytest.raises(Exception):
        build_signed_adder(1, 1)
