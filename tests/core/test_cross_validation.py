"""Heavy cross-validation: gate level vs functional model vs exact DP,
with hypothesis choosing widths, windows and operands."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adders import reference_add
from repro.circuit import simulate_bus_ints
from repro.core import build_aca, build_recovery_adder, build_vlsa_datapath
from repro.mc import aca_add, aca_is_correct, detector_flag

_CIRCUITS = {}


def _get(kind, width, window):
    key = (kind, width, window)
    if key not in _CIRCUITS:
        builder = {"aca": build_aca,
                   "recovery": build_recovery_adder,
                   "vlsa": build_vlsa_datapath}[kind]
        _CIRCUITS[key] = builder(width, window)
    return _CIRCUITS[key]


# Keep the dimension grid small so circuits are reused across examples.
_DIMS = st.sampled_from([(6, 2), (9, 3), (12, 4), (15, 5), (18, 6)])


@given(dims=_DIMS, a=st.integers(0, 2**18 - 1), b=st.integers(0, 2**18 - 1))
@settings(max_examples=150)
def test_aca_gate_vs_functional(dims, a, b):
    width, window = dims
    mask = (1 << width) - 1
    a, b = a & mask, b & mask
    out = simulate_bus_ints(_get("aca", width, window), {"a": a, "b": b})
    s, cout = aca_add(a, b, width, window)
    assert out["sum"] == s and out["cout"] == cout


@given(dims=_DIMS, a=st.integers(0, 2**18 - 1), b=st.integers(0, 2**18 - 1))
@settings(max_examples=150)
def test_vlsa_invariants(dims, a, b):
    width, window = dims
    mask = (1 << width) - 1
    a, b = a & mask, b & mask
    out = simulate_bus_ints(_get("vlsa", width, window), {"a": a, "b": b})
    ref = reference_add(width, a, b)
    # exact path always right
    assert out["sum_exact"] == ref["sum"] and out["cout_exact"] == ref["cout"]
    # flag is complete and matches the model
    assert out["err"] == int(detector_flag(a, b, width, window))
    if not out["err"]:
        assert out["sum"] == ref["sum"] and out["cout"] == ref["cout"]
    # speculative correctness matches the bit-trick predicate
    spec_right = (out["sum"] == ref["sum"] and out["cout"] == ref["cout"])
    assert spec_right == aca_is_correct(a, b, width, window)


@given(dims=_DIMS, a=st.integers(0, 2**18 - 1), b=st.integers(0, 2**18 - 1))
@settings(max_examples=100)
def test_recovery_always_right(dims, a, b):
    width, window = dims
    mask = (1 << width) - 1
    a, b = a & mask, b & mask
    out = simulate_bus_ints(_get("recovery", width, window),
                            {"a": a, "b": b})
    ref = reference_add(width, a, b)
    assert out["sum"] == ref["sum"] and out["cout"] == ref["cout"]
