"""VLSA datapath: output consistency, path timing ordering, sharing."""

import pytest

from repro.adders import build_best_traditional, reference_add
from repro.circuit import UMC180, check_structure, simulate_bus_ints
from repro.core import (
    build_aca,
    build_error_detector,
    build_recovery_adder,
    build_vlsa_datapath,
    characterize_vlsa,
)

_V = {}


def _vlsa(width, window=None):
    key = (width, window)
    if key not in _V:
        c = build_vlsa_datapath(width, window)
        check_structure(c)
        _V[key] = c
    return _V[key]


def test_outputs_present():
    c = _vlsa(16, 4)
    assert set(c.outputs) == {"sum", "cout", "err", "sum_exact",
                              "cout_exact"}


def test_exact_path_always_correct_and_spec_path_guarded(rng):
    width, window = 24, 5
    c = _vlsa(width, window)
    flagged = 0
    for _ in range(600):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        ref = reference_add(width, a, b)
        assert out["sum_exact"] == ref["sum"]
        assert out["cout_exact"] == ref["cout"]
        if out["err"]:
            flagged += 1
        else:
            assert out["sum"] == ref["sum"] and out["cout"] == ref["cout"]
    assert flagged > 0  # window 5 at 24 bits must stall sometimes


def test_default_window_is_9999_quantile():
    from repro.analysis import choose_window

    c = _vlsa(64)
    assert c.attrs["window"] == choose_window(64)


def test_characterize_orders_paths():
    timing = characterize_vlsa(_vlsa(64), UMC180)
    assert timing.aca_delay < timing.recovery_delay
    assert timing.detect_delay < timing.recovery_delay
    assert timing.clock_period == max(timing.aca_delay, timing.detect_delay)
    assert timing.width == 64
    assert timing.window == _vlsa(64).attrs["window"]


def test_clock_beats_traditional_adder():
    """The whole point: 1 speculative cycle is faster than one exact add."""
    best = build_best_traditional(256, UMC180)
    timing = characterize_vlsa(_vlsa(256), UMC180)
    assert timing.clock_period < best.delay


def test_combined_datapath_shares_logic():
    width, window = 32, 8
    combined = _vlsa(width, window).gate_count()
    separate = (build_aca(width, window).gate_count() +
                build_error_detector(width, window).gate_count() +
                build_recovery_adder(width, window).gate_count())
    assert combined < 0.8 * separate


def test_vlsa_exports_to_rtl():
    from repro.circuit import to_verilog, to_vhdl

    c = _vlsa(16, 4)
    assert "module" in to_verilog(c)
    assert "entity" in to_vhdl(c)
