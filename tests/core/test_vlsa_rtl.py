"""The registered gate-level VLSA (Fig. 6 as an actual netlist)."""

import random

import pytest

from repro.arch import VlsaMachine
from repro.circuit import (
    SequentialSimulator,
    UMC180,
    check_structure,
    min_clock_period,
    to_verilog,
)
from repro.circuit.simulate import bus_to_int, int_to_bus
from repro.core import build_vlsa_rtl
from repro.mc import detector_flag


class _Driver:
    """Feeds operand pairs respecting the VALID/STALL protocol."""

    def __init__(self, circuit, width):
        self.sim = SequentialSimulator(circuit)
        self.width = width
        self.completed = []
        self._in_flight = None

    def run(self, pairs):
        queue = list(pairs)
        current = queue.pop(0) if queue else (0, 0)
        guard = 0
        while (queue or self._in_flight is not None or current is not None):
            guard += 1
            assert guard < 100000, "protocol deadlock"
            a, b = current if current is not None else (0, 0)
            out = self.sim.step({"a": int_to_bus(a, self.width),
                                 "b": int_to_bus(b, self.width)})
            if self._in_flight is not None and out["valid"][0]:
                self.completed.append(
                    (self._in_flight, bus_to_int(out["sum"])))
                self._in_flight = None
            if not out["stall"][0] and current is not None:
                if self._in_flight is None:
                    self._in_flight = current
                    current = queue.pop(0) if queue else None
        return self.completed


@pytest.fixture(scope="module")
def rtl16():
    c = build_vlsa_rtl(16, 4)
    check_structure(c)
    return c


def test_every_completed_sum_is_exact(rtl16):
    rng = random.Random(0)
    pairs = [(rng.getrandbits(16), rng.getrandbits(16))
             for _ in range(400)]
    driver = _Driver(rtl16, 16)
    completed = driver.run(pairs)
    assert len(completed) == 400
    for (a, b), s in completed:
        assert s == (a + b) & 0xFFFF, (a, b, s)


def test_stall_happens_exactly_on_detector_flags(rtl16):
    """Run the scripted Fig. 7 scenario: ok, stall, ok."""
    sim = SequentialSimulator(rtl16)
    chain_a, chain_b = 0x7FFF, 0x0001  # full carry chain -> flag

    def step(a, b):
        return sim.step({"a": int_to_bus(a, 16), "b": int_to_bus(b, 16)})

    step(1, 2)                   # capture op1
    out = step(chain_a, chain_b)  # op1 presented; capture op2
    assert out["valid"][0] == 1 and bus_to_int(out["sum"]) == 3
    out = step(3, 4)             # op2 flagged: stall, hold op3
    assert out["stall"][0] == 1 and out["valid"][0] == 0
    out = step(3, 4)             # recovery cycle: corrected sum, valid
    assert out["valid"][0] == 1
    assert bus_to_int(out["sum"]) == (chain_a + chain_b) & 0xFFFF
    assert out["stall"][0] == 0  # op3 accepted at this edge
    out = step(5, 6)             # op3 presented
    assert out["valid"][0] == 1 and bus_to_int(out["sum"]) == 7


def test_rtl_matches_behavioural_machine_latency():
    width, window = 16, 6
    rng = random.Random(7)
    pairs = [(rng.getrandbits(width), rng.getrandbits(width))
             for _ in range(300)]
    machine_trace = VlsaMachine(width, window=window).run(pairs)
    driver = _Driver(build_vlsa_rtl(width, window), width)
    completed = driver.run(pairs)
    assert len(completed) == machine_trace.operations
    # Same stalls: the RTL takes 1 extra cycle per flagged op, so total
    # cycles match the behavioural model's accounting.
    rtl_cycles = driver.sim.cycle
    # One pipeline fill cycle separates the two accountings.
    assert rtl_cycles == machine_trace.total_cycles + 1


def test_rtl_timing_and_export():
    c = build_vlsa_rtl(32)
    period = min_clock_period(c, UMC180)
    assert 0.5 < period < 5.0
    v = to_verilog(c)
    assert "always @(posedge clk)" in v
    assert "vlsa_rtl32" in v


def test_window_default(rtl16):
    from repro.analysis import choose_window

    c = build_vlsa_rtl(24)
    assert c.attrs["window"] == choose_window(24)
