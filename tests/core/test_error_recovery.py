"""Error recovery: the recovered sum is always exact; logic is shared."""

import pytest
from hypothesis import given, strategies as st

from repro.adders import reference_add
from repro.circuit import check_structure, simulate_bus_ints
from repro.core import build_recovery_adder

_CACHE = {}


def _recovery(width, window, cin=False):
    key = (width, window, cin)
    if key not in _CACHE:
        c = build_recovery_adder(width, window, cin)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


@pytest.mark.parametrize("width,window", [
    (2, 1), (4, 2), (8, 3), (8, 8), (15, 4), (16, 5), (24, 7), (32, 6),
    (33, 5),
])
def test_recovery_always_exact(width, window, rng):
    c = _recovery(width, window)
    for _ in range(200):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        ref = reference_add(width, a, b)
        assert out["sum"] == ref["sum"] and out["cout"] == ref["cout"]


@given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
       cin=st.integers(0, 1))
def test_recovery_exact_with_carry_in(a, b, cin):
    c = _recovery(16, 5, cin=True)
    out = simulate_bus_ints(c, {"a": a, "b": b, "cin": cin})
    ref = reference_add(16, a, b, cin)
    assert out["sum"] == ref["sum"] and out["cout"] == ref["cout"]


def test_recovery_exact_on_carry_chain_patterns():
    """The inputs the ACA gets wrong are exactly what recovery is for."""
    width, window = 16, 4
    c = _recovery(width, window)
    mask = (1 << width) - 1
    patterns = [
        ((1 << (width - 1)) - 1, 1),         # full carry chain
        (mask, 1), (1, mask), (mask, mask),  # wrap-around
        (0x0FF0, 0x0010), (0xAAAA & mask, 0x5556 & mask),
    ]
    for a, b in patterns:
        out = simulate_bus_ints(c, {"a": a, "b": b})
        assert out["sum"] == (a + b) & mask
        assert out["cout"] == (a + b) >> width


def test_speculative_outputs_also_exposed(rng):
    from repro.mc import aca_add

    width, window = 16, 5
    c = _recovery(width, window)
    for _ in range(100):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        s, cout = aca_add(a, b, width, window)
        assert out["sum_spec"] == s and out["cout_spec"] == cout


def test_recovery_reuses_aca_products():
    """Combined circuit must be far smaller than ACA + standalone exact
    adder (Fig. 5's reuse argument)."""
    from repro.adders import build_cla_adder
    from repro.core import build_aca

    width, window = 64, 16
    combined = _recovery(width, window).gate_count()
    separate = (build_aca(width, window).gate_count() +
                build_cla_adder(width).gate_count())
    assert combined < separate


def test_window_equal_width():
    c = _recovery(8, 8)
    for a, b in [(255, 255), (170, 85), (1, 254)]:
        assert (simulate_bus_ints(c, {"a": a, "b": b})["sum"] ==
                (a + b) & 0xFF)
