"""Speculative subtractor and comparator."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import check_structure, simulate_bus_ints
from repro.core import build_speculative_subtractor

_CACHE = {}


def _sub(width, window, recovery=False):
    key = (width, window, recovery)
    if key not in _CACHE:
        c = build_speculative_subtractor(width, window,
                                         with_recovery=recovery)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


@given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1))
def test_full_window_subtractor_is_exact(a, b):
    out = simulate_bus_ints(_sub(16, 16), {"a": a, "b": b})
    assert out["diff"] == (a - b) & 0xFFFF
    assert out["geq"] == int(a >= b)


def test_speculative_subtractor_guarded(rng):
    c = _sub(16, 4, recovery=True)
    wrong = 0
    for _ in range(400):
        a, b = rng.getrandbits(16), rng.getrandbits(16)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        expect = (a - b) & 0xFFFF
        assert out["diff_exact"] == expect  # recovery always right
        assert out["geq_exact"] == int(a >= b)
        if out["diff"] != expect or out["geq"] != int(a >= b):
            wrong += 1
            assert out["err"], (a, b)
    assert wrong > 0  # window 4 at 16 bits must sometimes miss


def test_subtraction_corner_cases():
    c = _sub(8, 8)
    cases = [(0, 0), (255, 255), (0, 1), (1, 0), (255, 0), (0, 255),
             (128, 127), (127, 128)]
    for a, b in cases:
        out = simulate_bus_ints(c, {"a": a, "b": b})
        assert out["diff"] == (a - b) & 0xFF, (a, b)
        assert out["geq"] == int(a >= b), (a, b)


def test_equal_operands_have_long_propagate_chain():
    """a - a drives ~b + a all-propagate: the classic subtractor stall."""
    c = _sub(16, 4)
    out = simulate_bus_ints(c, {"a": 0x1234, "b": 0x1234})
    # The detector must fire (a ^ ~a is all ones).
    assert out["err"] == 1


def test_validation():
    with pytest.raises(Exception):
        build_speculative_subtractor(0, 4)
