"""Speculative incrementer: semantics, detector, exact error DP."""

import pytest

from repro.circuit import check_structure, simulate_bus_ints
from repro.core.incrementer import (
    build_speculative_incrementer,
    incrementer_error_probability,
)

_CACHE = {}


def _inc(width, window):
    key = (width, window)
    if key not in _CACHE:
        c = build_speculative_incrementer(width, window)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


@pytest.mark.parametrize("width,window", [(4, 2), (6, 3), (8, 4), (8, 8)])
def test_exhaustive_against_reference(width, window):
    c = _inc(width, window)
    mask = (1 << width) - 1
    for x in range(1 << width):
        out = simulate_bus_ints(c, {"x": x})
        exact_inc = (x + 1) & mask
        exact_cout = (x + 1) >> width
        correct = (out["inc"] == exact_inc and out["cout"] == exact_cout)
        if not correct:
            assert out["err"] == 1, x  # every error is flagged
        if not out["err"]:
            assert correct, x


def test_full_window_is_exact():
    c = _inc(8, 8)
    for x in range(256):
        out = simulate_bus_ints(c, {"x": x})
        assert out["inc"] == (x + 1) & 0xFF
        assert out["cout"] == (x + 1) >> 8
        assert out["err"] == 0


@pytest.mark.parametrize("width,window", [(5, 2), (6, 3), (8, 2), (8, 5)])
def test_error_probability_matches_brute_force(width, window):
    c = _inc(width, window)
    mask = (1 << width) - 1
    errors = 0
    for x in range(1 << width):
        out = simulate_bus_ints(c, {"x": x})
        wrong = (out["inc"] != (x + 1) & mask or
                 out["cout"] != (x + 1) >> width)
        errors += wrong
    brute = errors / float(1 << width)
    assert incrementer_error_probability(width, window) == pytest.approx(
        brute, abs=1e-12)


def test_error_probability_properties():
    # Monotone decreasing in window; zero when window covers the width.
    probs = [incrementer_error_probability(32, w) for w in range(1, 12)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert incrementer_error_probability(16, 16) == 0.0
    assert incrementer_error_probability(16, 20) == 0.0
    from fractions import Fraction
    assert isinstance(incrementer_error_probability(8, 3, exact=True),
                      Fraction)
    with pytest.raises(ValueError):
        incrementer_error_probability(0, 2)


def test_anchored_run_never_errs():
    """All-ones low bits with a zero above: the +1 is absorbed exactly."""
    c = _inc(8, 3)
    for ones in range(1, 8):
        x = (1 << ones) - 1  # 0..0111..1
        out = simulate_bus_ints(c, {"x": x})
        assert out["inc"] == x + 1, x


def test_unanchored_run_errs():
    """0111..10 pattern: carry cannot reach the run, so no error — but
    1110..; the failing case is a long run above a zero *with the carry
    arriving*, which never happens for +1.  The speculative error is the
    converse: the window sees all ones and wrongly *asserts* a carry."""
    c = _inc(8, 3)
    x = 0b0111_0111  # low run 3 (anchored, fine), high run 3 above a zero
    out = simulate_bus_ints(c, {"x": x})
    # True: x+1 = 0b0111_1000; spec carry into bit 7 sees 111 -> wrongly 1.
    assert out["inc"] != (x + 1) & 0xFF
    assert out["err"] == 1


def test_validation():
    with pytest.raises(Exception):
        build_speculative_incrementer(0, 2)
    with pytest.raises(Exception):
        build_speculative_incrementer(8, 0)
