"""Radix-4 Booth multiplier: recoding identity and gate-level checks."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import UMC180, analyze_area, check_structure, simulate_bus_ints
from repro.core.booth import booth_digits, build_booth_multiplier
from repro.core.multiplier import build_multiplier
from repro.core.signed import to_signed

_CACHE = {}


def _booth(width, window=None):
    key = (width, window)
    if key not in _CACHE:
        c = build_booth_multiplier(width, window)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


@given(value=st.integers(0, 2**12 - 1))
def test_booth_recoding_identity(value):
    digits = booth_digits(value, 12)
    assert all(-2 <= d <= 2 for d in digits)
    assert sum(d * 4 ** j for j, d in enumerate(digits)) == (
        to_signed(value, 12))
    assert len(digits) == 6


@pytest.mark.parametrize("width", [2, 3, 4])
def test_exhaustive_signed_products(width):
    c = _booth(width)
    mask = (1 << (2 * width)) - 1
    for a in range(1 << width):
        for b in range(1 << width):
            out = simulate_bus_ints(c, {"a": a, "b": b})
            expect = (to_signed(a, width) * to_signed(b, width)) & mask
            assert out["product"] == expect, (a, b)


@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_random_signed_products(a, b):
    out = simulate_bus_ints(_booth(8), {"a": a, "b": b})
    expect = (to_signed(a, 8) * to_signed(b, 8)) & 0xFFFF
    assert out["product"] == expect


def test_extreme_values():
    c = _booth(8)
    for a, b in [(0x80, 0x80), (0x80, 0x7F), (0x7F, 0x7F), (0xFF, 0xFF),
                 (0, 0x80), (1, 0xFF)]:
        out = simulate_bus_ints(c, {"a": a, "b": b})
        expect = (to_signed(a, 8) * to_signed(b, 8)) & 0xFFFF
        assert out["product"] == expect, (a, b)


def test_speculative_booth_guarded(rng):
    c = _booth(8, 4)
    wrong = 0
    for _ in range(400):
        a, b = rng.getrandbits(8), rng.getrandbits(8)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        expect = (to_signed(a, 8) * to_signed(b, 8)) & 0xFFFF
        if out["product"] != expect:
            wrong += 1
            assert out["err"], (a, b)
    assert wrong > 0  # window 4 must fail sometimes


def test_booth_has_fewer_partial_product_rows():
    """Radix-4 halves the rows: fewer compressor gates than the array
    multiplier before the final adder (compare MAJ3 counts)."""
    booth = _booth(16)
    array = build_multiplier(16, None)
    assert booth.op_histogram().get("MAJ3", 0) < (
        array.op_histogram().get("MAJ3", 0))


def test_width_validation():
    with pytest.raises(Exception):
        build_booth_multiplier(1)
