"""Multi-operand speculative addition (future-work extension)."""

import pytest

from repro.circuit import Circuit, check_structure, simulate_bus_ints
from repro.core import build_multi_operand_adder, reduce_carry_save


def _run(circuit, xs):
    return simulate_bus_ints(circuit, {f"x{k}": v
                                       for k, v in enumerate(xs)})


@pytest.mark.parametrize("width,operands", [
    (4, 2), (4, 3), (8, 3), (8, 5), (6, 7), (12, 4),
])
def test_exact_multi_operand_sum(width, operands, rng):
    c = build_multi_operand_adder(width, operands, window=None)
    check_structure(c)
    for _ in range(150):
        xs = [rng.getrandbits(width) for _ in range(operands)]
        assert _run(c, xs)["sum"] == sum(xs), xs


@pytest.mark.parametrize("width,operands,window", [
    (8, 3, 4), (8, 5, 5), (12, 4, 6),
])
def test_speculative_multi_operand_guarded(width, operands, window, rng):
    c = build_multi_operand_adder(width, operands, window=window)
    check_structure(c)
    wrong = 0
    for _ in range(300):
        xs = [rng.getrandbits(width) for _ in range(operands)]
        out = _run(c, xs)
        if out["sum"] != sum(xs):
            wrong += 1
            assert out["err"], xs  # errors must always be flagged
    # Small windows on many operands should exhibit at least one error.
    assert wrong >= 0


def test_speculative_with_big_window_is_exact(rng):
    c = build_multi_operand_adder(8, 4, window=32)
    for _ in range(100):
        xs = [rng.getrandbits(8) for _ in range(4)]
        out = _run(c, xs)
        assert out["sum"] == sum(xs)
        assert out["err"] == 0


def test_corner_cases():
    c = build_multi_operand_adder(4, 6, window=None)
    assert _run(c, [0] * 6)["sum"] == 0
    assert _run(c, [15] * 6)["sum"] == 90
    assert _run(c, [15, 0, 15, 0, 15, 0])["sum"] == 45


def test_output_width_covers_full_sum():
    c = build_multi_operand_adder(4, 5, window=None)
    # 5 * 15 = 75 needs 7 bits.
    assert c.output_width("sum") == 7
    assert _run(c, [15] * 5)["sum"] == 75


def test_operand_count_validation():
    with pytest.raises(Exception):
        build_multi_operand_adder(8, 1)


def test_reduce_carry_save_preserves_value(rng):
    """The two CSA rows must sum to the column total."""
    c = Circuit("csa")
    buses = [c.add_input_bus(f"x{k}", 6) for k in range(4)]
    columns = [[] for _ in range(9)]
    for bus in buses:
        for i, net in enumerate(bus):
            columns[i].append(net)
    row_a, row_b = reduce_carry_save(c, columns)
    c.set_output("ra", row_a)
    c.set_output("rb", row_b)
    for _ in range(200):
        xs = [rng.getrandbits(6) for _ in range(4)]
        out = simulate_bus_ints(c, {f"x{k}": v for k, v in enumerate(xs)})
        assert out["ra"] + out["rb"] == sum(xs), xs


def test_csa_depth_logarithmic():
    """Wallace reduction depth grows with log(operands), not linearly."""
    def depth(m):
        c = build_multi_operand_adder(8, m, window=None)
        return c.logic_depth()

    assert depth(16) <= depth(4) + 8
