"""Error detection: completeness (never misses), conservativeness, sharing."""

import pytest

from repro.adders import reference_add
from repro.circuit import (
    Circuit,
    UMC180,
    analyze_timing,
    check_structure,
    simulate_bus_ints,
)
from repro.core import (
    AcaBuilder,
    attach_error_detector,
    build_error_detector,
)
from repro.mc import detector_flag, longest_propagate_run


@pytest.mark.parametrize("width,window", [
    (4, 2), (8, 3), (8, 8), (16, 5), (16, 16), (24, 6), (33, 7),
])
def test_standalone_detector_matches_model(width, window, rng):
    c = build_error_detector(width, window)
    check_structure(c)
    for _ in range(300):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        er = simulate_bus_ints(c, {"a": a, "b": b})["err"]
        assert er == int(detector_flag(a, b, width, window))


def test_detector_equals_run_length_condition(rng):
    width, window = 20, 5
    c = build_error_detector(width, window)
    for _ in range(400):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        er = simulate_bus_ints(c, {"a": a, "b": b})["err"]
        assert er == int(longest_propagate_run(a, b, width) >= window)


def test_detector_never_misses_an_error(rng):
    """ER == 0 implies the ACA result is exact (the VLSA's soundness)."""
    from repro.core import build_aca

    width, window = 16, 4
    det = build_error_detector(width, window)
    aca = build_aca(width, window)
    silent = wrong_but_flagged = 0
    for _ in range(1000):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        er = simulate_bus_ints(det, {"a": a, "b": b})["err"]
        out = simulate_bus_ints(aca, {"a": a, "b": b})
        exact = reference_add(width, a, b)
        if not er:
            assert out == exact
            silent += 1
        elif out == exact:
            wrong_but_flagged += 1  # conservative false positive
    assert silent > 0
    assert wrong_but_flagged > 0  # conservativeness is real, not vacuous


def test_attached_detector_shares_aca_logic(rng):
    width, window = 24, 6
    c = Circuit("shared")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    builder = AcaBuilder(c, a, b, window).build()
    gates_before = c.gate_count()
    err = attach_error_detector(builder)
    c.set_output("err", err)
    c.set_output("sum", builder.sums)
    added = c.gate_count() - gates_before
    standalone = build_error_detector(width, window).gate_count()
    assert added < standalone / 2  # the AND strips came for free
    for _ in range(200):
        va, vb = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": va, "b": vb})
        assert out["err"] == int(detector_flag(va, vb, width, window))


def test_window_wider_than_operands_never_flags():
    c = build_error_detector(8, 9)
    for a, b in [(0, 0), (255, 255), (170, 85)]:
        assert simulate_bus_ints(c, {"a": a, "b": b})["err"] == 0


def test_full_width_window_flags_only_all_propagate():
    c = build_error_detector(8, 8)
    assert simulate_bus_ints(c, {"a": 0xAA, "b": 0x55})["err"] == 1
    assert simulate_bus_ints(c, {"a": 0xAA, "b": 0x54})["err"] == 0


def test_detector_uses_only_simple_gates():
    """Section 4.1: AND/OR (+ the input XORs), no complex carry cells."""
    c = build_error_detector(64, 18)
    ops = set(c.op_histogram())
    assert "AO21" not in ops and "MAJ3" not in ops and "MUX2" not in ops


def test_detector_faster_than_traditional():
    from repro.adders import build_best_traditional

    best = build_best_traditional(128, UMC180)
    d = analyze_timing(build_error_detector(128, 20), UMC180).critical_delay
    assert d < best.delay
    assert d > best.delay * 0.4  # same asymptotic class, not free


def test_invalid_window():
    with pytest.raises(Exception):
        build_error_detector(8, 0)
