"""The Almost Correct Adder: gate-level vs functional model, exactness
conditions, sharing structure."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.adders import reference_add
from repro.circuit import (
    UNIT,
    analyze_area,
    analyze_timing,
    check_structure,
    simulate_bus_ints,
)
from repro.core import AcaBuilder, build_aca, naive_aca_window_products
from repro.mc import aca_add, aca_is_correct, longest_propagate_run

_CIRCUITS = {}


def _aca(width, window, cin=False):
    key = (width, window, cin)
    if key not in _CIRCUITS:
        c = build_aca(width, window, cin)
        check_structure(c)
        _CIRCUITS[key] = c
    return _CIRCUITS[key]


@pytest.mark.parametrize("width,window", [
    (1, 1), (2, 1), (4, 2), (8, 3), (8, 8), (13, 4), (16, 5), (16, 16),
    (24, 7), (32, 6),
])
def test_gate_level_matches_functional_model(width, window, rng):
    c = _aca(width, window)
    for _ in range(150):
        a = rng.getrandbits(width)
        b = rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        s, cout = aca_add(a, b, width, window)
        assert out["sum"] == s and out["cout"] == cout, (width, window, a, b)


@pytest.mark.parametrize("width,window", [(8, 3), (16, 5), (24, 6)])
def test_gate_level_matches_functional_model_with_cin(width, window, rng):
    c = _aca(width, window, cin=True)
    for _ in range(150):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        ci = rng.getrandbits(1)
        out = simulate_bus_ints(c, {"a": a, "b": b, "cin": ci})
        s, cout = aca_add(a, b, width, window, ci)
        assert out["sum"] == s and out["cout"] == cout


@given(a=st.integers(0, 2**20 - 1), b=st.integers(0, 2**20 - 1))
def test_exact_when_no_long_propagate_run(a, b):
    """Inputs whose longest propagate run < window must add exactly."""
    width, window = 20, 6
    if longest_propagate_run(a, b, width) < window:
        c = _aca(width, window)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        assert out == reference_add(width, a, b)


def test_wrong_only_when_model_predicts(rng):
    width, window = 16, 3
    c = _aca(width, window)
    mismatches = 0
    for _ in range(500):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        ref = reference_add(width, a, b)
        is_right = (out == ref)
        assert is_right == aca_is_correct(a, b, width, window)
        mismatches += not is_right
    assert mismatches > 0  # window 3 at 16 bits must fail sometimes


def test_window_clamped_to_width():
    c = build_aca(8, 100)
    assert c.attrs["window"] == 8
    # Fully anchored: it is an exact adder.
    for a in range(0, 256, 17):
        for b in range(0, 256, 23):
            assert (simulate_bus_ints(c, {"a": a, "b": b}) ==
                    reference_add(8, a, b))


def test_low_bits_always_exact(rng):
    """Bits below the window are anchored at 0 and can never be wrong."""
    width, window = 16, 5
    c = _aca(width, window)
    low_mask = (1 << window) - 1
    for _ in range(300):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        assert out["sum"] & low_mask == (a + b) & low_mask


def test_worst_case_pattern_fails():
    """A = 0111..1, B = 0000..1 drives the carry across every bit."""
    width, window = 16, 4
    c = _aca(width, window)
    a = (1 << (width - 1)) - 1  # 0111...1
    b = 1
    out = simulate_bus_ints(c, {"a": a, "b": b})
    assert out["sum"] != (a + b) & 0xFFFF  # speculation must fail here
    s, cout = aca_add(a, b, width, window)
    assert out["sum"] == s


def test_invalid_window_rejected():
    with pytest.raises(Exception):
        build_aca(8, 0)


def test_depth_grows_with_log_window():
    """ACA depth tracks log2(window), not log2(width) (the speedup)."""
    wide_small_window = analyze_timing(build_aca(256, 8), UNIT).critical_delay
    narrow = analyze_timing(build_aca(32, 8), UNIT).critical_delay
    assert wide_small_window == narrow  # width-independent
    bigger_window = analyze_timing(build_aca(256, 64), UNIT).critical_delay
    assert bigger_window > wide_small_window


def test_area_near_linear_in_width():
    """Gate count per bit grows only with log(window): O(n log w)."""
    w = 16
    per_bit = []
    for n in (64, 128, 256):
        per_bit.append(build_aca(n, w).gate_count() / n)
    assert per_bit[2] < per_bit[0] * 1.2  # essentially flat


def test_builder_exposes_strips_and_windows():
    from repro.circuit import Circuit

    c = Circuit("t")
    a = c.add_input_bus("a", 16)
    b = c.add_input_bus("b", 16)
    builder = AcaBuilder(c, a, b, 6).build()
    assert len(builder.windows) == 16
    assert len(builder.spec_carries) == 17
    assert len(builder.strips) == 3  # levels 0..2 for window 6 (m=3)
    # Window products at i >= w-1 cover exactly w positions: check via
    # range_product consistency.
    g, p = builder.range_product(4, 9)
    assert (g, p) == builder.windows[9]


def test_naive_variant_equivalent_but_bigger(rng):
    width, window = 48, 12
    shared = _aca(width, window)
    naive = naive_aca_window_products(width, window)
    check_structure(naive)
    for _ in range(100):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        assert (simulate_bus_ints(naive, {"a": a, "b": b}) ==
                simulate_bus_ints(shared, {"a": a, "b": b}))
    assert naive.gate_count() > 2 * shared.gate_count()


def test_shared_strip_fanout_bounded():
    """Paper: each intermediate product is used a bounded number of times
    (anchored boundary nodes excepted, as in any clamped prefix network)."""
    import statistics

    c = _aca(64, 16)
    counts = c.fanout_counts()
    ao21 = sorted((counts[n.nid] for n in c.nets if n.op == "AO21"),
                  reverse=True)
    heavy = [f for f in ao21 if f > 4]
    assert len(heavy) <= 4  # only the clamped boundary column
    assert statistics.median(ao21) <= 3
