"""Speculative multiplication (future-work extension)."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import (
    UMC180,
    analyze_timing,
    check_structure,
    simulate_bus_ints,
)
from repro.core import build_multiplier, multiplier_error_rate

_CACHE = {}


def _mul(width, window=None):
    key = (width, window)
    if key not in _CACHE:
        c = build_multiplier(width, window)
        check_structure(c)
        _CACHE[key] = c
    return _CACHE[key]


@pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8, 10])
def test_exact_multiplier(width, rng):
    c = _mul(width)
    for _ in range(150):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        assert simulate_bus_ints(c, {"a": a, "b": b})["product"] == a * b


@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_exact_multiplier_property(a, b):
    assert simulate_bus_ints(_mul(8), {"a": a, "b": b})["product"] == a * b


def test_exact_multiplier_corners():
    c = _mul(6)
    for a, b in [(0, 0), (63, 63), (1, 63), (63, 1), (32, 32)]:
        assert simulate_bus_ints(c, {"a": a, "b": b})["product"] == a * b


def test_speculative_multiplier_guarded(rng):
    c = _mul(8, 5)
    wrong = flagged = 0
    for _ in range(400):
        a, b = rng.getrandbits(8), rng.getrandbits(8)
        out = simulate_bus_ints(c, {"a": a, "b": b})
        if out["product"] != a * b:
            wrong += 1
            assert out["err"], (a, b)
        flagged += out["err"]
    assert flagged >= wrong


def test_speculative_multiplier_usually_right(rng):
    c = _mul(8, 8)
    wrong = 0
    for _ in range(300):
        a, b = rng.getrandbits(8), rng.getrandbits(8)
        if simulate_bus_ints(c, {"a": a, "b": b})["product"] != a * b:
            wrong += 1
    assert wrong < 30


def test_speculative_faster_than_exact():
    exact = analyze_timing(_mul(16), UMC180).critical_delay
    spec = analyze_timing(_mul(16, 8), UMC180).critical_delay
    assert spec < exact


def test_error_rate_helper():
    err, flag = multiplier_error_rate(6, 4, samples=300, seed=1)
    assert 0 <= err <= flag <= 1


def test_width_validation():
    with pytest.raises(Exception):
        build_multiplier(0)
