"""Every adder architecture must equal integer addition (with and
without carry-in) at power-of-two, odd and single-bit widths."""

import pytest
from hypothesis import given, strategies as st

from repro.adders import (
    ADDER_BUILDERS,
    adder_names,
    build_adder,
    reference_add,
    reference_fn,
)
from repro.circuit import (
    assert_equivalent_exhaustive,
    assert_equivalent_random,
    check_structure,
    simulate_bus_ints,
)

WIDTHS = [1, 2, 3, 4, 7, 8, 16, 21, 32]


@pytest.mark.parametrize("name", adder_names())
@pytest.mark.parametrize("width", WIDTHS)
def test_adder_matches_reference(name, width):
    circuit = build_adder(name, width)
    check_structure(circuit)
    assert_equivalent_random(circuit, reference_fn(width, False),
                             num_vectors=128)


@pytest.mark.parametrize("name", adder_names())
@pytest.mark.parametrize("width", [1, 3, 8, 17])
def test_adder_with_carry_in(name, width):
    circuit = build_adder(name, width, cin=True)
    check_structure(circuit)
    assert_equivalent_random(circuit, reference_fn(width, True),
                             num_vectors=128)


@pytest.mark.parametrize("name", adder_names())
def test_small_adders_exhaustively(name):
    circuit = build_adder(name, 4)
    assert_equivalent_exhaustive(circuit, reference_fn(4, False))


@pytest.mark.parametrize("name", adder_names())
def test_interface_shape(name):
    c = build_adder(name, 12)
    assert set(c.inputs) == {"a", "b"}
    assert set(c.outputs) == {"sum", "cout"}
    assert c.output_width("sum") == 12
    assert c.output_width("cout") == 1


@given(a=st.integers(0, 2**24 - 1), b=st.integers(0, 2**24 - 1),
       cin=st.integers(0, 1))
def test_reference_add_is_integer_addition(a, b, cin):
    out = reference_add(24, a, b, cin)
    total = a + b + cin
    assert out["sum"] == total & (2**24 - 1)
    assert out["cout"] == total >> 24


@given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1))
@pytest.mark.parametrize("name", ["ripple", "sklansky", "cla"])
def test_adder_property_random_operands(name, a, b):
    circuit = _CACHE.setdefault(name, build_adder(name, 16))
    out = simulate_bus_ints(circuit, {"a": a, "b": b})
    assert out["sum"] == (a + b) & 0xFFFF
    assert out["cout"] == (a + b) >> 16


_CACHE = {}


def test_unknown_adder_name():
    with pytest.raises(KeyError):
        build_adder("flux_capacitor", 8)


def test_registry_contents():
    names = adder_names()
    assert "ripple" in names and "kogge_stone" in names
    assert names == sorted(names)
    assert set(names) == set(ADDER_BUILDERS)


@pytest.mark.parametrize("name", adder_names())
def test_zero_and_allones_corner_cases(name):
    for width in (1, 8):
        c = build_adder(name, width)
        mask = (1 << width) - 1
        cases = [(0, 0), (mask, mask), (mask, 1), (1, mask), (0, mask)]
        for a, b in cases:
            out = simulate_bus_ints(c, {"a": a, "b": b})
            assert out == reference_add(width, a, b), (name, width, a, b)
