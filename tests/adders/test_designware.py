"""DesignWare-proxy baseline selection."""

import pytest

from repro.adders import (
    FAST_CANDIDATES,
    build_best_traditional,
    evaluate_candidates,
    reference_fn,
)
from repro.circuit import UMC180, UNIT, assert_equivalent_random


def test_results_sorted_by_delay():
    results = evaluate_candidates(32, UMC180)
    delays = [r.delay for r in results]
    assert delays == sorted(delays)
    assert len(results) == len(FAST_CANDIDATES)


def test_best_is_first():
    results = evaluate_candidates(32, UMC180)
    best = build_best_traditional(32, UMC180)
    assert best.name == results[0].name
    assert best.delay == results[0].delay


def test_best_traditional_is_functionally_correct():
    best = build_best_traditional(24, UMC180)
    assert_equivalent_random(best.circuit, reference_fn(24, False),
                             num_vectors=128)


def test_memoisation_returns_same_objects():
    r1 = evaluate_candidates(16, UMC180)
    r2 = evaluate_candidates(16, UMC180)
    assert r1 is r2


def test_subset_evaluation_not_cached():
    subset = evaluate_candidates(16, UMC180, names=["ripple"]
                                 if "ripple" in FAST_CANDIDATES
                                 else ["sklansky"])
    assert len(subset) == 1


def test_unit_library_prefers_minimum_depth():
    """With unit delays the winner must be a minimum-depth architecture."""
    best = build_best_traditional(64, UNIT)
    from repro.circuit import analyze_timing
    depth = analyze_timing(best.circuit, UNIT).critical_delay
    # log2(64) = 6 combine levels + pg + sum = 8 unit delays.
    assert depth <= 8


def test_best_beats_ripple():
    from repro.adders import build_ripple_adder
    from repro.circuit import analyze_timing

    best = build_best_traditional(64, UMC180)
    ripple = analyze_timing(build_ripple_adder(64), UMC180).critical_delay
    assert best.delay < ripple / 3
