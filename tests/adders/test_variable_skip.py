"""Variable-block carry-skip adder."""

import pytest

from repro.adders import (
    build_variable_skip_adder,
    reference_fn,
    variable_skip_blocks,
)
from repro.circuit import assert_equivalent_random, check_structure


@pytest.mark.parametrize("width", [1, 2, 3, 7, 16, 33, 64])
def test_block_schedule_covers_width(width):
    blocks = variable_skip_blocks(width)
    assert sum(blocks) == width
    assert all(b > 0 for b in blocks)


def test_block_schedule_is_trapezoidal():
    blocks = variable_skip_blocks(64)
    peak = max(blocks)
    rise = blocks[:blocks.index(peak)]
    assert rise == sorted(rise)  # ramps up
    assert blocks[-1] <= peak


def test_schedule_validation():
    with pytest.raises(ValueError):
        variable_skip_blocks(0)


@pytest.mark.parametrize("width", [1, 4, 9, 16, 31, 64])
def test_functional_correctness(width):
    c = build_variable_skip_adder(width)
    check_structure(c)
    assert_equivalent_random(c, reference_fn(width, False), num_vectors=128)


def test_with_carry_in():
    c = build_variable_skip_adder(17, cin=True)
    assert_equivalent_random(c, reference_fn(17, True), num_vectors=128)


def test_trapezoid_balances_entry_and_exit_blocks():
    """The classic property: tiny first/last blocks (fast carry entry and
    exit) with the plateau in the middle — the true worst path visits
    one short ripple, the skip chain, and one short ripple."""
    blocks = variable_skip_blocks(64)
    assert blocks[0] == 1
    assert blocks[-1] <= max(blocks) // 2 + 1
    assert max(blocks) >= 8   # plateau comparable to the fixed sqrt size
