"""Prefix-network schedules: validity, depth and size properties."""

import math

import pytest

from repro.adders import (
    brent_kung_schedule,
    han_carlson_schedule,
    knowles_schedule,
    kogge_stone_schedule,
    ladner_fischer_schedule,
    schedule_depth,
    schedule_size,
    sklansky_schedule,
    validate_schedule,
)
from repro.circuit import CircuitError

TOPOLOGIES = {
    "sklansky": sklansky_schedule,
    "kogge_stone": kogge_stone_schedule,
    "brent_kung": brent_kung_schedule,
    "han_carlson": han_carlson_schedule,
    "ladner_fischer": ladner_fischer_schedule,
    "knowles": knowles_schedule,
}

WIDTHS = [1, 2, 3, 4, 5, 8, 11, 16, 23, 32, 57, 64, 100, 128]


@pytest.mark.parametrize("name,fn", TOPOLOGIES.items())
@pytest.mark.parametrize("width", WIDTHS)
def test_all_schedules_are_valid(name, fn, width):
    validate_schedule(width, fn(width))


@pytest.mark.parametrize("width", [8, 16, 64, 128])
def test_minimum_depth_topologies(width):
    logn = math.ceil(math.log2(width))
    assert schedule_depth(sklansky_schedule(width)) == logn
    assert schedule_depth(kogge_stone_schedule(width)) == logn
    assert schedule_depth(knowles_schedule(width)) == logn


@pytest.mark.parametrize("width", [8, 16, 64, 128])
def test_brent_kung_depth(width):
    logn = math.ceil(math.log2(width))
    assert schedule_depth(brent_kung_schedule(width)) == 2 * logn - 1


@pytest.mark.parametrize("width", [16, 64, 128])
def test_han_carlson_depth_is_ks_plus_sparsity_levels(width):
    logn = math.ceil(math.log2(width))
    assert schedule_depth(han_carlson_schedule(width, 2)) == logn + 1
    assert schedule_depth(han_carlson_schedule(width, 4)) == logn + 2


def test_han_carlson_sparsity_one_is_kogge_stone():
    assert han_carlson_schedule(32, 1) == kogge_stone_schedule(32)


@pytest.mark.parametrize("width", [16, 64])
def test_node_count_ordering(width):
    """Brent-Kung sparsest, Kogge-Stone densest, Sklansky in between."""
    bk = schedule_size(brent_kung_schedule(width))
    sk = schedule_size(sklansky_schedule(width))
    ks = schedule_size(kogge_stone_schedule(width))
    hc = schedule_size(han_carlson_schedule(width))
    assert bk <= sk <= ks
    assert bk <= hc <= ks


def test_known_exact_node_counts():
    # Classical results at n = 16.
    assert schedule_size(sklansky_schedule(16)) == 32       # (n/2) log n
    assert schedule_size(kogge_stone_schedule(16)) == 49    # n log n - n + 1
    assert schedule_size(brent_kung_schedule(16)) == 26     # 2n - log n - 2


def test_sparsity_validation():
    with pytest.raises(CircuitError):
        han_carlson_schedule(16, 3)
    with pytest.raises(CircuitError):
        ladner_fischer_schedule(16, 0)
    with pytest.raises(CircuitError):
        knowles_schedule(16, 6)


def test_validate_schedule_rejects_disjoint_ranges():
    # Combining [3..3] with [0..0] skips positions 1-2.
    with pytest.raises(CircuitError):
        validate_schedule(4, [[(3, 0)]])


def test_validate_schedule_rejects_incomplete():
    with pytest.raises(CircuitError):
        validate_schedule(4, [[(1, 0)]])  # positions 2,3 never anchored


def test_validate_schedule_rejects_out_of_range():
    with pytest.raises(CircuitError):
        validate_schedule(4, [[(4, 3)]])
    with pytest.raises(CircuitError):
        validate_schedule(4, [[(2, 2)]])


def test_kogge_stone_fanout_bounded():
    """KS fanout is logarithmically bounded (anchored nodes feed one
    combine per level), far below Sklansky's linear fanout."""
    import math
    import statistics

    from repro.adders import build_kogge_stone_adder

    c = build_kogge_stone_adder(32)
    counts = [f for f in c.fanout_counts() if f > 0]
    assert c.max_fanout() <= math.ceil(math.log2(32)) + 3
    assert statistics.median(counts) <= 2


def test_sklansky_fanout_grows():
    from repro.adders import build_sklansky_adder

    assert build_sklansky_adder(64).max_fanout() > 16
