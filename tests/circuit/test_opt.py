"""Optimisation passes: dead-logic sweep and rebuild canonicalisation."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import (
    Circuit,
    rebuild,
    simulate_bus_ints,
    sweep_dead_logic,
)


def _with_dead_logic():
    c = Circuit("t")
    a = c.add_input_bus("a", 4)
    b = c.add_input_bus("b", 4)
    keep = [c.add_gate("XOR", x, y) for x, y in zip(a, b)]
    for x, y in zip(a, b):
        c.add_gate("NAND", x, y)  # dead
    c.set_output("y", keep)
    return c


def test_sweep_removes_dead_gates():
    c = _with_dead_logic()
    swept, stats = sweep_dead_logic(c)
    assert stats.gates_before == 8
    assert stats.gates_after == 4
    assert stats.removed == 4
    assert swept.gate_count() == 4


def test_sweep_preserves_interface_and_semantics():
    c = _with_dead_logic()
    swept, _ = sweep_dead_logic(c)
    assert set(swept.inputs) == {"a", "b"}
    assert set(swept.outputs) == {"y"}
    for va, vb in [(0, 0), (5, 9), (15, 15), (3, 12)]:
        assert (simulate_bus_ints(swept, {"a": va, "b": vb})["y"] ==
                simulate_bus_ints(c, {"a": va, "b": vb})["y"])


def test_sweep_keeps_constants_used_by_outputs():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("one", c.const(1))
    c.set_output("a", a)
    swept, _ = sweep_dead_logic(c)
    assert simulate_bus_ints(swept, {"a": 0})["one"] == 1


def test_rebuild_dedupes_unhashed_circuit():
    c = Circuit("t", use_strash=False)
    a, b = c.add_input("a"), c.add_input("b")
    x1 = c.add_gate("AND", a, b)
    x2 = c.add_gate("AND", a, b)  # duplicate without hashing
    c.set_output("y", c.add_gate("OR", x1, x2))
    assert c.gate_count() == 3
    opt, stats = rebuild(c)
    # AND deduped; OR(x, x) folds away entirely.
    assert opt.gate_count() == 1
    assert stats.removed == 2
    for va in (0, 1):
        for vb in (0, 1):
            assert (simulate_bus_ints(opt, {"a": va, "b": vb})["y"] ==
                    (va & vb))


@given(st.integers(0, 255), st.integers(0, 255))
def test_rebuild_preserves_adder_semantics(va, vb):
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(8)
    opt, _ = rebuild(c)
    assert (simulate_bus_ints(opt, {"a": va, "b": vb}) ==
            simulate_bus_ints(c, {"a": va, "b": vb}))


def test_rebuild_carries_attrs_and_positions():
    c = _with_dead_logic()
    c.attrs["window"] = 7
    opt, _ = rebuild(c)
    assert opt.attrs["window"] == 7
    assert opt.nets[opt.inputs["a"][3]].pos == 3.0
