"""Structural validation and equivalence checking utilities."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    assert_equivalent_exhaustive,
    assert_equivalent_random,
    check_structure,
)
from repro.circuit.netlist import Net


def _xor_circuit():
    c = Circuit("x")
    a, b = c.add_input("a"), c.add_input("b")
    c.set_output("y", c.add_gate("XOR", a, b))
    return c


def test_check_structure_accepts_valid():
    check_structure(_xor_circuit())


def test_check_structure_catches_bad_arity():
    c = _xor_circuit()
    c.nets.append(Net(len(c.nets), "NOT", (0, 1)))
    with pytest.raises(CircuitError):
        check_structure(c)


def test_check_structure_catches_forward_reference():
    c = _xor_circuit()
    nid = len(c.nets)
    c.nets.append(Net(nid, "NOT", (nid,)))  # self-reference
    with pytest.raises(CircuitError):
        check_structure(c)


def test_check_structure_catches_corrupt_input_bus():
    c = _xor_circuit()
    # Point the input bus at a logic gate.
    c.inputs["a"][0] = c.outputs["y"][0]
    with pytest.raises(CircuitError):
        check_structure(c)


def test_exhaustive_equivalence_pass_and_fail():
    c = _xor_circuit()
    assert_equivalent_exhaustive(c, lambda a, b: {"y": a ^ b})
    with pytest.raises(AssertionError):
        assert_equivalent_exhaustive(c, lambda a, b: {"y": a & b})


def test_exhaustive_cap():
    c = Circuit("wide")
    c.add_input_bus("a", 20)
    c.set_output("y", c.inputs["a"][0])
    with pytest.raises(CircuitError):
        assert_equivalent_exhaustive(c, lambda a: {"y": a & 1}, max_bits=14)


def test_random_equivalence_pass_and_fail():
    c = Circuit("add4")
    a = c.add_input_bus("a", 4)
    b = c.add_input_bus("b", 4)
    carry = c.const(0)
    sums = []
    for i in range(4):
        p = c.add_gate("XOR", a[i], b[i])
        sums.append(c.add_gate("XOR", p, carry))
        carry = c.add_gate("MAJ3", a[i], b[i], carry)
    c.set_output("s", sums)
    assert_equivalent_random(
        c, lambda a, b: {"s": (a + b) & 0xF}, num_vectors=128)
    with pytest.raises(AssertionError):
        assert_equivalent_random(
            c, lambda a, b: {"s": (a - b) & 0xF}, num_vectors=128)


def test_random_equivalence_reports_failing_stimulus():
    c = _xor_circuit()
    try:
        assert_equivalent_random(c, lambda a, b: {"y": 1 - (a ^ b)},
                                 num_vectors=4)
    except AssertionError as exc:
        assert "mismatch" in str(exc)
    else:  # pragma: no cover
        pytest.fail("expected a mismatch")
