"""Stuck-at fault injection and coverage."""

import pytest

from repro.adders import build_ripple_adder
from repro.circuit import (
    Circuit,
    StuckAtFault,
    enumerate_faults,
    fault_coverage,
    simulate_with_fault,
)
from repro.circuit.simulate import int_to_bus, bus_to_int


def _xor_circuit():
    c = Circuit("x")
    a, b = c.add_input("a"), c.add_input("b")
    c.set_output("y", c.add_gate("XOR", a, b))
    return c


def test_enumerate_faults_counts():
    c = _xor_circuit()
    faults = enumerate_faults(c)
    # 2 inputs + 1 gate, two polarities each.
    assert len(faults) == 6
    assert all(f.value in (0, 1) for f in faults)


def test_enumerate_skips_dead_and_constants():
    c = _xor_circuit()
    c.add_gate("AND", c.inputs["a"][0], c.inputs["b"][0])  # dead
    c.const(1)  # constants excluded
    live = enumerate_faults(c, live_only=True)
    everything = enumerate_faults(c, live_only=False)
    assert len(live) == 6
    assert len(everything) == 8


def test_fault_changes_output():
    c = _xor_circuit()
    gate = c.outputs["y"][0]
    stim = {"a": [0b0101], "b": [0b0011]}
    faulty = simulate_with_fault(c, StuckAtFault(gate, 1), stim, 4)
    assert faulty["y"][0] == 0b1111


def test_fault_on_input_net():
    c = _xor_circuit()
    a = c.inputs["a"][0]
    stim = {"a": [0b0101], "b": [0b0011]}
    faulty = simulate_with_fault(c, StuckAtFault(a, 0), stim, 4)
    assert faulty["y"][0] == 0b0011  # y == b when a stuck at 0


def test_fault_describe():
    c = _xor_circuit()
    text = StuckAtFault(c.inputs["a"][0], 1).describe(c)
    assert "a" in text and "stuck-at-1" in text


def test_missing_net_rejected():
    c = _xor_circuit()
    with pytest.raises(Exception):
        simulate_with_fault(c, StuckAtFault(999, 0), {"a": [1], "b": [1]}, 1)


def test_ripple_adder_full_coverage():
    """Every stuck-at fault in a ripple adder is excitable and observable
    with enough random patterns (classic result for adders)."""
    c = build_ripple_adder(6)
    report = fault_coverage(c, num_vectors=512, seed=3)
    assert report.total_faults > 0
    assert report.coverage == pytest.approx(1.0)
    assert report.undetected == []


def test_restricted_observation_lowers_coverage():
    """Watching only the carry-out cannot expose every sum-logic fault."""
    c = build_ripple_adder(6)
    full = fault_coverage(c, num_vectors=512, seed=3)
    only_cout = fault_coverage(c, num_vectors=512, seed=3,
                               outputs=["cout"])
    assert only_cout.detected < full.detected
    assert 0.0 < only_cout.coverage < 1.0


def test_vlsa_error_flag_is_not_a_fault_detector():
    """The VLSA's ER flag guards *speculation* errors, not silicon
    defects: many stuck-at faults flip the sum without raising err."""
    from repro.core import build_vlsa_datapath

    c = build_vlsa_datapath(12, 4)
    sum_only = fault_coverage(c, num_vectors=256, seed=1,
                              outputs=["sum_exact"])
    flag_only = fault_coverage(c, num_vectors=256, seed=1,
                               outputs=["err"])
    assert flag_only.coverage < sum_only.coverage
