"""Exports: VHDL/Verilog text, DOT graphs, JSON round-trip."""

import json

import pytest

from repro.adders import build_ripple_adder
from repro.circuit import (
    Circuit,
    serialize,
    simulate_bus_ints,
    to_dot,
    to_verilog,
    to_vhdl,
)
from repro.core import build_aca


def _sample():
    c = Circuit("my adder!")
    a = c.add_input_bus("a", 2)
    b = c.add_input_bus("b", 2)
    c.set_output("sum", [c.add_gate("XOR", a[0], b[0]),
                         c.add_gate("XOR", a[1], b[1])])
    c.set_output("any_carry", c.add_gate("AND", a[0], b[0]))
    return c


# ---------------------------------------------------------------- VHDL
def test_vhdl_structure():
    text = to_vhdl(_sample())
    assert "entity my_adder is" in text
    assert "architecture structural of my_adder" in text
    assert "std_logic_vector(1 downto 0)" in text
    assert text.count("<=") >= 4
    assert "ieee.std_logic_1164" in text


def test_vhdl_gate_expressions():
    c = Circuit("ops", fold_constants=False)
    ins = [c.add_input(n) for n in "abc"]
    c.set_output("y1", c.add_gate("AO21", *ins))
    c.set_output("y2", c.add_gate("MUX2", *ins))
    c.set_output("y3", c.add_gate("MAJ3", *ins))
    c.set_output("y4", c.add_gate("NAND", ins[0], ins[1]))
    text = to_vhdl(c)
    assert "(a and b) or c" in text
    assert "not" in text


def test_vhdl_constants():
    c = Circuit("k")
    a = c.add_input("a")
    c.set_output("y", a)
    c.set_output("zero", c.const(0))
    c.set_output("one", c.const(1))
    text = to_vhdl(c)
    assert "'0'" in text and "'1'" in text


def test_vhdl_skips_dead_logic():
    c = _sample()
    c.add_gate("NOR", c.inputs["a"][0], c.inputs["b"][0])  # dead
    text = to_vhdl(c)
    assert "nor" not in text.lower().replace("_nor", "")


# -------------------------------------------------------------- Verilog
def test_verilog_structure():
    text = to_verilog(_sample())
    assert text.startswith("module my_adder (")
    assert text.rstrip().endswith("endmodule")
    assert "input  [1:0] a;" in text
    assert "output [1:0] sum;" in text
    assert "assign" in text


def test_verilog_gate_expressions():
    c = Circuit("ops", fold_constants=False)
    ins = [c.add_input(n) for n in "abc"]
    c.set_output("y1", c.add_gate("AO21", *ins))
    c.set_output("y2", c.add_gate("MUX2", *ins))
    c.set_output("y3", c.add_gate("XNOR", ins[0], ins[1]))
    text = to_verilog(c)
    assert "(a & b) | c" in text
    assert "a ? b : c" in text
    assert "~(a ^ b)" in text


def test_verilog_constants():
    c = Circuit("k")
    a = c.add_input("a")
    c.set_output("y", a)
    c.set_output("zero", c.const(0))
    text = to_verilog(c)
    assert "1'b0" in text


def test_exports_on_real_generator():
    aca = build_aca(16, 5)
    vhdl = to_vhdl(aca)
    verilog = to_verilog(aca)
    assert vhdl.count("<=") > 50
    assert verilog.count("assign") > 50


# ------------------------------------------------------------------ DOT
def test_dot_output():
    text = to_dot(_sample())
    assert text.startswith('digraph "my adder!"')
    assert "->" in text
    assert "lightblue" in text  # inputs styled


# ----------------------------------------------------------------- JSON
def test_json_round_trip_preserves_semantics():
    c = build_ripple_adder(6)
    text = serialize.dumps(c)
    back = serialize.loads(text)
    assert back.name == c.name
    for va, vb in [(0, 0), (13, 55), (63, 63), (42, 21)]:
        assert (simulate_bus_ints(back, {"a": va, "b": vb}) ==
                simulate_bus_ints(c, {"a": va, "b": vb}))


def test_json_round_trip_preserves_structure_exactly():
    c = build_aca(12, 4)
    back = serialize.loads(serialize.dumps(c))
    assert len(back.nets) == len(c.nets)
    for n1, n2 in zip(c.nets, back.nets):
        assert (n1.op, n1.fanins, n1.name, n1.pos) == (
            n2.op, n2.fanins, n2.name, n2.pos)
    assert back.attrs == c.attrs


def test_json_format_version_check():
    data = serialize.circuit_to_dict(_sample())
    data["format_version"] = 99
    with pytest.raises(Exception):
        serialize.circuit_from_dict(data)


def test_json_file_round_trip(tmp_path):
    c = _sample()
    path = tmp_path / "c.json"
    serialize.save(c, str(path))
    back = serialize.load(str(path))
    assert back.name == c.name
    json.loads(path.read_text())  # valid JSON on disk


def test_const_usable_after_load():
    c = Circuit("k")
    a = c.add_input("a")
    c.set_output("one", c.const(1))
    c.set_output("a", a)
    back = serialize.loads(serialize.dumps(c))
    assert back.const(1) == c.const(1)
