"""BDD engine and formal equivalence checking."""

import pytest

from repro.adders import (
    build_brent_kung_adder,
    build_cla_adder,
    build_kogge_stone_adder,
    build_ripple_adder,
    build_sklansky_adder,
)
from repro.circuit import Circuit
from repro.circuit.bdd import (
    Bdd,
    build_output_bdds,
    count_satisfying,
    interleaved_order,
    prove_equivalent,
)


# ----------------------------------------------------------- engine core
def test_terminals_and_vars():
    m = Bdd(3)
    x = m.var(0)
    assert m.evaluate(x, [1, 0, 0]) == 1
    assert m.evaluate(x, [0, 1, 1]) == 0
    assert m.evaluate(Bdd.TRUE, [0, 0, 0]) == 1
    assert m.evaluate(Bdd.FALSE, [1, 1, 1]) == 0
    with pytest.raises(Exception):
        m.var(3)


def test_ite_identities():
    m = Bdd(2)
    x, y = m.var(0), m.var(1)
    assert m.ite(Bdd.TRUE, x, y) == x
    assert m.ite(Bdd.FALSE, x, y) == y
    assert m.ite(x, y, y) == y
    assert m.ite(x, Bdd.TRUE, Bdd.FALSE) == x


def test_boolean_ops_truth_tables():
    m = Bdd(2)
    x, y = m.var(0), m.var(1)
    ops = {
        "and": (m.apply_and(x, y), lambda a, b: a & b),
        "or": (m.apply_or(x, y), lambda a, b: a | b),
        "xor": (m.apply_xor(x, y), lambda a, b: a ^ b),
    }
    for node, ref in ops.values():
        for a in (0, 1):
            for b in (0, 1):
                assert m.evaluate(node, [a, b]) == ref(a, b)
    n = m.apply_not(x)
    assert m.evaluate(n, [0, 0]) == 1
    assert m.evaluate(n, [1, 0]) == 0


def test_canonicity():
    """Structurally different but equal formulas share one node."""
    m = Bdd(2)
    x, y = m.var(0), m.var(1)
    demorgan_a = m.apply_not(m.apply_and(x, y))
    demorgan_b = m.apply_or(m.apply_not(x), m.apply_not(y))
    assert demorgan_a == demorgan_b


def test_count_sat():
    m = Bdd(3)
    x, y, z = m.var(0), m.var(1), m.var(2)
    assert m.count_sat(m.apply_and(x, y)) == 2      # z free
    assert m.count_sat(m.apply_or(x, y)) == 6
    assert m.count_sat(Bdd.TRUE) == 8
    assert m.count_sat(Bdd.FALSE) == 0
    assert m.count_sat(m.apply_xor(x, z)) == 4


# ------------------------------------------------------ circuit translation
def test_symbolic_simulation_matches_truth_table():
    c = Circuit("maj")
    ins = [c.add_input(n) for n in "abc"]
    c.set_output("y", c.add_gate("MAJ3", *ins))
    c.set_output("m", c.add_gate("MUX2", *ins))
    order = interleaved_order(c)
    m = Bdd(3)
    bdds = build_output_bdds(c, m, order)
    for val in range(8):
        assign = [0] * 3
        for nid, level in order.items():
            name = c.nets[nid].name
            idx = "abc".index(name)
            assign[level] = (val >> idx) & 1
        a, b, cc = val & 1, (val >> 1) & 1, (val >> 2) & 1
        assert m.evaluate(bdds["y"][0], assign) == int(a + b + cc >= 2)
        assert m.evaluate(bdds["m"][0], assign) == (b if a else cc)


def test_adder_bdds_stay_small():
    """Interleaved order keeps adder BDDs linear, not exponential."""
    def size_of(width):
        c = build_ripple_adder(width)
        order = interleaved_order(c)
        m = Bdd(len(order))
        build_output_bdds(c, m, order)
        return m.size()

    s16, s32 = size_of(16), size_of(32)
    assert s32 < 20000
    assert s32 < 5 * s16  # polynomial growth (~n^2 allocations), not 2^n


# --------------------------------------------------------- equivalence
@pytest.mark.parametrize("builder", [
    build_sklansky_adder, build_kogge_stone_adder, build_brent_kung_adder,
    build_cla_adder,
])
def test_prefix_adders_formally_equal_ripple(builder):
    ok, reason = prove_equivalent(build_ripple_adder(24), builder(24))
    assert ok, reason


def test_recovery_adder_formally_exact():
    from repro.core import build_recovery_adder

    ok, reason = prove_equivalent(build_ripple_adder(32),
                                  build_recovery_adder(32, 6),
                                  outputs=["sum", "cout"])
    assert ok, reason


def test_aca_with_full_window_formally_exact():
    from repro.core import build_aca

    ok, reason = prove_equivalent(build_ripple_adder(24),
                                  build_aca(24, 24),
                                  outputs=["sum"])
    assert ok, reason


def test_aca_with_small_window_is_not_exact():
    from repro.core import build_aca

    ok, reason = prove_equivalent(build_ripple_adder(16),
                                  build_aca(16, 4),
                                  outputs=["sum"])
    assert not ok
    assert "sum[" in reason


def test_interface_mismatch_detected():
    ok, reason = prove_equivalent(build_ripple_adder(8),
                                  build_ripple_adder(9))
    assert not ok and "interface" in reason


def test_count_satisfying_error_flag():
    """Exact count of flagged inputs equals the run-length count."""
    from repro.analysis import count_max_run_at_most
    from repro.core import build_error_detector

    n, w = 10, 3
    c = build_error_detector(n, w)
    flagged = count_satisfying(c, "err")
    # P(flag) = P(longest xor-run >= w); count over (a, b) pairs:
    # for each xor value x there are 2^n (a, b) pairs.
    xor_strings_flagged = (1 << n) - count_max_run_at_most(n, w - 1)
    assert flagged == xor_strings_flagged * (1 << n)
