"""Buffer-tree insertion pass."""

import pytest

from repro.adders import build_sklansky_adder, reference_fn
from repro.circuit import (
    Circuit,
    UMC180,
    analyze_area,
    analyze_timing,
    assert_equivalent_random,
    check_structure,
    insert_buffers,
    simulate_bus_ints,
)


def _high_fanout_circuit(sinks=16):
    c = Circuit("fan", use_strash=False, fold_constants=False)
    a, b = c.add_input("a"), c.add_input("b")
    src = c.add_gate("AND", a, b)
    outs = [c.add_gate("XOR", src, a) if i % 2 else c.add_gate("OR", src, b)
            for i in range(sinks)]
    for i, o in enumerate(outs):
        c.set_output(f"y{i}", o)
    return c


def test_fanout_bounded_after_pass():
    c = _high_fanout_circuit(16)
    assert c.max_fanout() >= 16
    buffered, stats = insert_buffers(c, max_fanout=4)
    check_structure(buffered)
    assert buffered.max_fanout() <= 4
    assert stats.buffers_added > 0
    assert stats.max_fanout_before >= 16
    assert stats.max_fanout_after <= 4


def test_semantics_preserved():
    c = _high_fanout_circuit(10)
    buffered, _ = insert_buffers(c, max_fanout=3)
    for a in (0, 1):
        for b in (0, 1):
            assert (simulate_bus_ints(buffered, {"a": a, "b": b}) ==
                    simulate_bus_ints(c, {"a": a, "b": b}))


def test_sklansky_buffering_preserves_addition():
    c = build_sklansky_adder(24)
    buffered, stats = insert_buffers(c, max_fanout=4)
    assert stats.nets_buffered > 0
    assert_equivalent_random(buffered, reference_fn(24, False),
                             num_vectors=128)
    assert buffered.max_fanout() <= 4


def test_buffering_trades_area_for_load():
    c = build_sklansky_adder(64)
    buffered, stats = insert_buffers(c, max_fanout=4)
    assert (analyze_area(buffered, UMC180).total >
            analyze_area(c, UMC180).total)
    # The pass is a no-op for circuits already under the bound.
    small = build_sklansky_adder(4)
    same, stats2 = insert_buffers(small, max_fanout=16)
    assert stats2.buffers_added == 0
    assert same.gate_count() == small.gate_count()


def test_low_threshold_rejected():
    with pytest.raises(ValueError):
        insert_buffers(Circuit("c"), max_fanout=1)


def test_attrs_and_buses_survive():
    c = build_sklansky_adder(8)
    c.attrs["window"] = 3
    buffered, _ = insert_buffers(c, max_fanout=2)
    assert buffered.attrs["window"] == 3
    assert set(buffered.inputs) == {"a", "b"}
    assert set(buffered.outputs) == {"sum", "cout"}
