"""Verilog testbench generation."""

import pytest

from repro.adders import build_ripple_adder
from repro.circuit import Circuit
from repro.circuit.export_tb import to_verilog_testbench
from repro.circuit.export_verilog import to_verilog


def test_testbench_structure():
    c = build_ripple_adder(8)
    tb = to_verilog_testbench(c, num_vectors=4, seed=1)
    assert tb.startswith("`timescale")
    assert "module tb;" in tb
    assert "ripple8 dut (" in tb
    assert tb.count("#1;") == 4
    assert "ALL %0d VECTORS PASS" in tb
    assert "$finish;" in tb


def test_explicit_vectors_and_golden_responses():
    c = build_ripple_adder(4)
    vectors = [{"a": 3, "b": 5}, {"a": 15, "b": 1}]
    tb = to_verilog_testbench(c, vectors=vectors)
    # 3 + 5 = 8, cout 0; 15 + 1 = 0, cout 1.
    assert "4'h8" in tb
    assert "4'h0" in tb
    assert "1'h1" in tb
    assert tb.count("!==") == 4  # 2 outputs x 2 vectors


def test_bus_and_scalar_declarations():
    c = Circuit("mix")
    c.add_input_bus("data", 8)
    c.add_input("enable")
    c.set_output("y", c.add_gate("AND", c.inputs["data"][0],
                                 c.inputs["enable"][0]))
    tb = to_verilog_testbench(c, num_vectors=2)
    assert "reg  [7:0] data;" in tb
    assert "reg  enable;" in tb
    assert "wire y;" in tb


def test_pairs_with_module_export():
    c = build_ripple_adder(6)
    rtl = to_verilog(c)
    tb = to_verilog_testbench(c, num_vectors=3)
    combined = rtl + "\n" + tb
    assert combined.count("endmodule") == 2


def test_validation():
    c = Circuit("empty")
    c.add_input("x")
    with pytest.raises(Exception):
        to_verilog_testbench(c, num_vectors=2)
    c.set_output("y", c.inputs["x"][0])
    with pytest.raises(Exception):
        to_verilog_testbench(c, vectors=[])
