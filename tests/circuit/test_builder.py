"""Word-level builder helpers: trees, pg preprocessing, carry operator."""

import itertools

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    and_tree,
    carry_combine,
    carry_combine_g,
    or_tree,
    pg_preprocess,
    reduce_tree,
    simulate_bus_ints,
    sum_postprocess,
    xor_tree,
)


def _tree_circuit(op, n, max_arity):
    c = Circuit("t")
    bus = c.add_input_bus("x", n)
    root = reduce_tree(c, op, bus, max_arity=max_arity)
    c.set_output("y", root)
    return c


@pytest.mark.parametrize("op,ref", [
    ("AND", all), ("OR", any), ("XOR", lambda bits: sum(bits) & 1),
])
@pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
@pytest.mark.parametrize("arity", [2, 3, 4])
def test_reduce_tree_semantics(op, ref, n, arity):
    c = _tree_circuit(op, n, arity)
    for value in range(1 << n):
        bits = [(value >> i) & 1 for i in range(n)]
        expected = int(ref(bits))
        assert simulate_bus_ints(c, {"x": value})["y"] == expected


def test_reduce_tree_depth_respects_arity():
    c = Circuit("t")
    bus = c.add_input_bus("x", 16)
    and_tree(c, bus, max_arity=4)
    depths = {}
    for net in c.nets:
        depths[net.nid] = (0 if not net.fanins else
                           1 + max(depths[f] for f in net.fanins))
    assert max(depths.values()) == 2  # 16 -> 4 -> 1 with 4-ary gates


def test_reduce_tree_errors():
    c = Circuit("t")
    with pytest.raises(CircuitError):
        reduce_tree(c, "AND", [], max_arity=2)
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        reduce_tree(c, "AND", [a], max_arity=1)


def test_tree_wrappers_match_reduce_tree():
    c = Circuit("t")
    bus = c.add_input_bus("x", 4)
    assert and_tree(c, bus) == reduce_tree(c, "AND", bus)
    assert or_tree(c, bus) == reduce_tree(c, "OR", bus)
    assert xor_tree(c, bus) == reduce_tree(c, "XOR", bus)


def test_pg_preprocess():
    c = Circuit("t")
    a = c.add_input_bus("a", 3)
    b = c.add_input_bus("b", 3)
    g, p = pg_preprocess(c, a, b)
    c.set_output("g", g)
    c.set_output("p", p)
    for va, vb in itertools.product(range(8), repeat=2):
        out = simulate_bus_ints(c, {"a": va, "b": vb})
        assert out["g"] == va & vb
        assert out["p"] == va ^ vb
    # Positions stamped per bit column.
    assert c.nets[g[2]].pos == 2.0


def test_pg_preprocess_width_mismatch():
    c = Circuit("t")
    a = c.add_input_bus("a", 2)
    b = c.add_input_bus("b", 3)
    with pytest.raises(CircuitError):
        pg_preprocess(c, a, b)


def test_carry_combine_is_the_prefix_operator():
    c = Circuit("t")
    names = ["gh", "ph", "gl", "pl"]
    nets = [c.add_input(n) for n in names]
    g, p = carry_combine(c, *nets)
    g_only = carry_combine_g(c, nets[0], nets[1], nets[2])
    assert g_only == g  # structural hashing reuses the same AO21
    c.set_output("g", g)
    c.set_output("p", p)
    for bits in itertools.product((0, 1), repeat=4):
        stim = dict(zip(names, bits))
        out = simulate_bus_ints(c, stim)
        gh, ph, gl, pl = bits
        assert out["g"] == (gh | (ph & gl))
        assert out["p"] == (ph & pl)


def test_sum_postprocess():
    c = Circuit("t")
    p = c.add_input_bus("p", 3)
    carries = c.add_input_bus("c", 3)
    sums = sum_postprocess(c, p, carries)
    c.set_output("s", sums)
    for vp, vc in itertools.product(range(8), repeat=2):
        out = simulate_bus_ints(c, {"p": vp, "c": vc})
        assert out["s"] == vp ^ vc


def test_sum_postprocess_length_mismatch():
    c = Circuit("t")
    p = c.add_input_bus("p", 3)
    carries = c.add_input_bus("c", 2)
    with pytest.raises(CircuitError):
        sum_postprocess(c, p, carries)
