"""Sequential substrate: DFFs, clocked simulation, register-aware timing."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    SequentialSimulator,
    UMC180,
    UNIT,
    check_structure,
    min_clock_period,
    sequential_timing,
    to_verilog,
    to_vhdl,
)
from repro.circuit import serialize


def _counter(bits=3):
    """A binary counter: registers + incrementer feedback."""
    c = Circuit("counter")
    regs = [c.add_dff(f"q{i}") for i in range(bits)]
    carry = c.const(1)
    for i in range(bits):
        nxt = c.add_gate("XOR", regs[i], carry)
        carry = c.add_gate("AND", regs[i], carry)
        c.connect_dff(regs[i], nxt)
    c.set_output("count", regs)
    return c


def test_dff_construction_rules():
    c = Circuit("t")
    d = c.add_dff("state")
    assert c.is_sequential()
    assert c.dffs() == [d]
    x = c.add_input("x")
    c.connect_dff(d, x)
    with pytest.raises(CircuitError):
        c.connect_dff(d, x)  # already connected
    with pytest.raises(CircuitError):
        c.connect_dff(x, x)  # not a DFF
    with pytest.raises(CircuitError):
        c.add_dff(init=2)
    with pytest.raises(CircuitError):
        c.add_gate("DFF", x)  # must use add_dff


def test_unconnected_dff_rejected():
    c = Circuit("t")
    c.add_dff("loose")
    c.set_output("y", c.const(0))
    with pytest.raises(CircuitError):
        check_structure(c)
    with pytest.raises(CircuitError):
        SequentialSimulator(c)


def test_counter_counts():
    c = _counter(3)
    check_structure(c)
    sim = SequentialSimulator(c)
    seen = []
    for _ in range(10):
        out = sim.step({})
        seen.append(sum(bit << i for i, bit in enumerate(out["count"])))
    assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]


def test_reset_and_init_values():
    c = Circuit("t")
    d0 = c.add_dff("zero", init=0)
    d1 = c.add_dff("one", init=1)
    x = c.add_input("x")
    c.connect_dff(d0, x)
    c.connect_dff(d1, x)
    c.set_output("y", [d0, d1])
    sim = SequentialSimulator(c)
    out = sim.step({"x": [0]})
    assert out["y"] == [0, 1]  # init values visible on cycle 0
    sim.step({"x": [1]})
    assert sim.peek_state(d0) == 1
    sim.reset()
    assert sim.peek_state(d0) == 0 and sim.peek_state(d1) == 1
    assert sim.cycle == 0


def test_bit_parallel_streams():
    """Two independent streams packed into one word."""
    c = Circuit("acc")
    d = c.add_dff("acc")
    x = c.add_input("x")
    c.connect_dff(d, c.add_gate("XOR", d, x))
    c.set_output("y", d)
    sim = SequentialSimulator(c, num_vectors=2)
    # Stream 0 toggles every cycle (x=1); stream 1 never (x=0).
    for cycle in range(4):
        out = sim.step({"x": [0b01]})
        assert (out["y"][0] >> 1) & 1 == 0
        assert out["y"][0] & 1 == cycle % 2


def test_two_phase_swap():
    """Register exchange through combinational crossover."""
    c = Circuit("swap")
    a = c.add_dff("a", init=1)
    b = c.add_dff("b", init=0)
    c.connect_dff(a, b)
    c.connect_dff(b, a)
    c.set_output("ab", [a, b])
    sim = SequentialSimulator(c)
    values = [sim.step({})["ab"] for _ in range(3)]
    assert values == [[1, 0], [0, 1], [1, 0]]


def test_sequential_timing_reg_to_reg():
    c = _counter(8)
    timing = sequential_timing(c, UNIT)
    # DFF launch (1) + carry chain (6 ANDs; the first AND with const-1
    # folds away) + final XOR.
    assert timing.min_clock_period == pytest.approx(1 + 6 + 1)
    assert timing.worst_path_kind == "reg->reg"
    assert min_clock_period(c, UMC180) > 0


def test_combinational_simulate_rejects_dffs():
    from repro.circuit import simulate_bus_ints

    c = _counter(2)
    with pytest.raises(RuntimeError):
        simulate_bus_ints(c, {})


def test_passes_reject_sequential():
    from repro.circuit import insert_buffers, rebuild, sweep_dead_logic
    from repro.circuit.bdd import interleaved_order, build_output_bdds, Bdd

    c = _counter(2)
    with pytest.raises(Exception):
        sweep_dead_logic(c)
    with pytest.raises(Exception):
        rebuild(c)
    with pytest.raises(Exception):
        insert_buffers(c, max_fanout=4)
    with pytest.raises(Exception):
        build_output_bdds(c, Bdd(0), interleaved_order(c))


def test_rtl_export_with_clock():
    c = _counter(2)
    v = to_verilog(c)
    assert "input  clk;" in v
    assert "always @(posedge clk)" in v
    assert "reg r" in v
    vhdl = to_vhdl(c)
    assert "clk : in  std_logic" in vhdl
    assert "rising_edge(clk)" in vhdl


def test_json_round_trip_keeps_state():
    c = _counter(3)
    back = serialize.loads(serialize.dumps(c))
    assert back.is_sequential()
    assert back.dff_init == c.dff_init
    sim = SequentialSimulator(back)
    seen = [sum(bit << i for i, bit in enumerate(sim.step({})["count"]))
            for _ in range(5)]
    assert seen == [0, 1, 2, 3, 4]


def test_missing_stimulus_rejected():
    c = Circuit("t")
    d = c.add_dff("d")
    x = c.add_input("x")
    c.connect_dff(d, x)
    c.set_output("y", d)
    sim = SequentialSimulator(c)
    with pytest.raises(CircuitError):
        sim.step({})
    with pytest.raises(CircuitError):
        SequentialSimulator(c, num_vectors=0)
