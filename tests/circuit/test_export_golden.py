"""Golden-file regression tests for the RTL exporters.

Unlike the structural checks in ``test_export.py``, these pin the exact
text emitted for a tiny reference design, so unintentional changes to
the export format show up as diffs.
"""

import pytest

from repro.circuit import Circuit, to_verilog, to_vhdl


def _golden_design():
    """A 2-bit half-adder-ish design with every port style."""
    c = Circuit("golden")
    a = c.add_input_bus("a", 2)
    en = c.add_input("en")
    s0 = c.add_gate("XOR", a[0], a[1])
    c.set_output("s", [s0, c.add_gate("AND", s0, en)])
    c.set_output("flag", c.add_gate("NOT", en))
    return c


GOLDEN_VERILOG = """\
module golden (a, en, s, flag);
  input  [1:0] a;
  input  en;
  output [1:0] s;
  output flag;
  wire w3;
  wire w4;
  wire w5;
  assign w3 = a[0] ^ a[1];
  assign w4 = w3 & en;
  assign w5 = ~en;
  assign s[0] = w3;
  assign s[1] = w4;
  assign flag = w5;
endmodule
"""

GOLDEN_VHDL = """\
library ieee;
use ieee.std_logic_1164.all;

entity golden is
  port (
    a : in  std_logic_vector(1 downto 0);
    en : in  std_logic;
    s : out std_logic_vector(1 downto 0);
    flag : out std_logic
  );
end entity golden;

architecture structural of golden is
  signal w3 : std_logic;
  signal w4 : std_logic;
  signal w5 : std_logic;
begin
  w3 <= a(0) xor a(1);
  w4 <= w3 and en;
  w5 <= not en;
  s(0) <= w3;
  s(1) <= w4;
  flag <= w5;
end architecture structural;
"""


def test_verilog_golden():
    assert to_verilog(_golden_design()) == GOLDEN_VERILOG


def test_vhdl_golden():
    assert to_vhdl(_golden_design()) == GOLDEN_VHDL
