"""Static timing analysis: arrivals, critical paths, delay model terms."""

import pytest

from repro.circuit import (
    Circuit,
    UMC180,
    UNIT,
    analyze_timing,
    critical_path_delay,
    output_arrivals,
)


def _chain(n):
    """A chain of n NOT gates."""
    c = Circuit("chain")
    x = c.add_input("x")
    # Disable folding: NOT(NOT(x)) would collapse.
    c.fold_constants = False
    cur = x
    for _ in range(n):
        cur = c.add_gate("NOT", cur)
    c.set_output("y", cur)
    return c


def test_unit_delay_equals_depth():
    c = _chain(7)
    assert critical_path_delay(c, UNIT) == pytest.approx(7.0)
    assert c.logic_depth() == 7


def test_critical_path_reconstruction():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    fast = c.add_gate("AND", a, b)
    slow = c.add_gate("XOR", c.add_gate("OR", a, b), fast)
    c.set_output("y", slow)
    report = analyze_timing(c, UNIT)
    assert report.critical_delay == pytest.approx(2.0)
    assert report.critical_output == ("y", 0)
    assert report.depth() == 2
    assert report.path_ops(c)[-1] == "XOR"


def test_input_arrival_overrides():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    y = c.add_gate("AND", a, b)
    c.set_output("y", y)
    base = analyze_timing(c, UNIT).critical_delay
    late = analyze_timing(c, UNIT, input_arrivals={b: 5.0}).critical_delay
    assert late == pytest.approx(base + 5.0)


def test_fanout_load_term():
    c = Circuit("t")
    a = c.add_input("a")
    src = c.add_gate("BUF", a)
    sinks = [c.add_gate("NOT", src) for _ in range(8)]
    # Hashing collapses identical NOTs; rebuild with hashing off.
    c2 = Circuit("t2", use_strash=False, fold_constants=False)
    a2 = c2.add_input("a")
    src2 = c2.add_gate("BUF", a2)
    for i in range(8):
        c2.set_output(f"y{i}", c2.add_gate("NOT", src2))
    report = analyze_timing(c2, UMC180)
    # BUF drives 8 sinks: its delay includes fanout_delay * log2(8).
    buf_arrival = report.arrivals[src2]
    expected = UMC180.cell("BUF", 1).delay + UMC180.fanout_delay * 3
    assert buf_arrival == pytest.approx(expected)


def test_wire_span_term():
    c = Circuit("t", fold_constants=False)
    a = c.add_input("a", pos=0.0)
    b = c.add_input("b", pos=100.0)
    y = c.add_gate("AND", a, b, pos=100.0)
    c.set_output("y", y)
    d = analyze_timing(c, UMC180).critical_delay
    no_wire = UMC180.cell("AND", 2).delay
    assert d == pytest.approx(no_wire + 100.0 * UMC180.wire_delay_per_bit)


def test_output_arrivals_per_bit():
    c = _chain(3)
    c.set_output("tap", c.nets[c.outputs["y"][0]].fanins[0])
    arr = output_arrivals(c, UNIT)
    assert arr["y"][0] == pytest.approx(3.0)
    assert arr["tap"][0] == pytest.approx(2.0)


def test_no_outputs_raises():
    c = Circuit("t")
    c.add_input("a")
    with pytest.raises(ValueError):
        analyze_timing(c, UNIT)


def test_deeper_circuit_is_slower():
    assert (critical_path_delay(_chain(10), UMC180) >
            critical_path_delay(_chain(3), UMC180))
