"""Technology library lookup, extrapolation and derived models."""

import pytest

from repro.circuit import LIBRARIES, UMC180, UNIT, get_library


def test_shipped_libraries():
    assert set(LIBRARIES) == {"unit", "umc180"}
    assert get_library("unit") is UNIT
    assert get_library("umc180") is UMC180
    with pytest.raises(KeyError):
        get_library("tsmc7")


def test_unit_library_is_uniform():
    assert UNIT.cell("AND", 2).delay == 1.0
    assert UNIT.cell("AND", 5).delay == 1.0
    assert UNIT.cell("AO21", 3).delay == 1.0
    assert UNIT.fanout_delay == 0.0
    assert UNIT.wire_delay_per_bit == 0.0


def test_umc_simple_cells_faster_than_complex():
    """The asymmetry behind the paper's 2/3 error-detection delay."""
    assert UMC180.cell("AND", 2).delay < UMC180.cell("AO21", 3).delay
    assert UMC180.cell("OR", 2).delay < UMC180.cell("XOR", 2).delay
    assert UMC180.cell("NAND", 2).delay < UMC180.cell("AND", 2).delay


def test_variadic_scaling_monotone():
    for op in ("AND", "OR", "XOR"):
        delays = [UMC180.cell(op, k).delay for k in (2, 3, 4, 6)]
        assert delays == sorted(delays)
        areas = [UMC180.cell(op, k).area for k in (2, 3, 4, 6)]
        assert areas == sorted(areas)


def test_variadic_extrapolation_beyond_table():
    d8 = UMC180.cell("AND", 8).delay
    d20 = UMC180.cell("AND", 20).delay
    assert d20 > d8


def test_unknown_cell_raises():
    with pytest.raises(KeyError):
        UMC180.cell("TRISTATE", 2)


def test_gate_delay_terms():
    base = UMC180.cell("AND", 2).delay
    assert UMC180.gate_delay("AND", 2, fanout=1, span=0.0) == (
        pytest.approx(base))
    with_fanout = UMC180.gate_delay("AND", 2, fanout=4, span=0.0)
    assert with_fanout == pytest.approx(base + 2 * UMC180.fanout_delay)
    with_wire = UMC180.gate_delay("AND", 2, fanout=1, span=50.0)
    assert with_wire == pytest.approx(base + 50 * UMC180.wire_delay_per_bit)
    # fanout 0 (output-only net) must not go negative
    assert UMC180.gate_delay("AND", 2, fanout=0, span=0.0) == (
        pytest.approx(base))


def test_with_wire_model():
    heavy = UMC180.with_wire_model(fanout_delay=1.0, wire_delay_per_bit=0.5)
    assert heavy.fanout_delay == 1.0
    assert heavy.wire_delay_per_bit == 0.5
    assert heavy.name != UMC180.name
    assert heavy.cell("AND", 2).delay == UMC180.cell("AND", 2).delay


def test_derived_library_names_are_distinct():
    """Regression: analysis caches key on the library name, so two
    different wire models must never share one."""
    a = UMC180.with_wire_model(0.01, 0.0001)
    b = UMC180.with_wire_model(0.05, 0.001)
    assert a.name != b.name
    assert a.name != UMC180.name
