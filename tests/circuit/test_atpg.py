"""BDD-based ATPG: targeted tests, untestability proofs, compaction."""

import pytest

from repro.adders import build_ripple_adder, build_sklansky_adder
from repro.circuit import Circuit, StuckAtFault, enumerate_faults
from repro.circuit.atpg import AtpgResult, fault_bdd_test, generate_tests
from repro.circuit.faults import fault_coverage, simulate_with_fault
from repro.circuit.simulate import int_to_bus


def test_targeted_vector_detects_fault():
    c = build_ripple_adder(4)
    # Pick a mid-circuit gate fault.
    gate = next(n.nid for n in c.nets if n.op == "MAJ3")
    fault = StuckAtFault(gate, 1)
    vec = fault_bdd_test(c, fault)
    assert vec is not None
    # Verify the vector really distinguishes good from faulty.
    stim = {name: int_to_bus(vec[name], len(bus))
            for name, bus in c.inputs.items()}
    from repro.circuit import simulate_words

    golden = simulate_words(c, stim, 1)
    faulty = simulate_with_fault(c, fault, stim, 1)
    assert golden != faulty


def test_untestable_fault_is_proven():
    """A stuck-at on logic masked by construction must come back None."""
    c = Circuit("redundant", fold_constants=False)
    a = c.add_input("a")
    na = c.add_gate("NOT", a)
    dead = c.add_gate("AND", a, na)   # constant 0 in disguise
    c.set_output("y", c.add_gate("OR", a, dead))
    fault = StuckAtFault(dead, 0)     # stuck-at-0 on a constant-0 net
    assert fault_bdd_test(c, fault) is None


def test_full_test_set_for_small_adder():
    c = build_ripple_adder(4)
    result = generate_tests(c, random_vectors=8, seed=1)
    assert result.coverage == pytest.approx(1.0)
    assert result.untestable == []
    assert result.detected == result.total_faults
    # Compacted set should be far smaller than exhaustive (256 vectors).
    assert len(result.vectors) < 30


def test_generated_set_verified_by_fault_simulator():
    c = build_sklansky_adder(6)
    result = generate_tests(c, random_vectors=16, seed=2)
    report = fault_coverage(c, num_vectors=1)  # placeholder shape check
    assert result.total_faults == report.total_faults
    # Re-simulate the generated vectors independently.
    from repro.circuit.atpg import _detects

    hits = _detects(c, result.vectors, enumerate_faults(c))
    assert all(hits)


def test_compaction_keeps_coverage():
    c = build_ripple_adder(3)
    full = generate_tests(c, random_vectors=32, seed=3, compact=False)
    compacted = generate_tests(c, random_vectors=32, seed=3, compact=True)
    assert compacted.detected == full.detected
    assert len(compacted.vectors) <= len(full.vectors)


def test_zero_random_phase_still_works():
    c = build_ripple_adder(3)
    result = generate_tests(c, random_vectors=0, seed=0)
    assert result.coverage == pytest.approx(1.0)
