"""Gate semantics: every operation against its truth table."""

import itertools

import pytest

from repro.circuit import GATE_SPECS, gate_spec, is_input_op


def _truth(op, *bits):
    """Reference behaviour of each op on single-bit operands."""
    if op == "AND":
        return int(all(bits))
    if op == "OR":
        return int(any(bits))
    if op == "XOR":
        return sum(bits) & 1
    if op == "NAND":
        return 1 - int(all(bits))
    if op == "NOR":
        return 1 - int(any(bits))
    if op == "XNOR":
        return 1 - (sum(bits) & 1)
    if op == "NOT":
        return 1 - bits[0]
    if op == "BUF":
        return bits[0]
    if op == "AO21":
        a, b, c = bits
        return (a & b) | c
    if op == "OA21":
        a, b, c = bits
        return (a | b) & c
    if op == "MUX2":
        s, a, b = bits
        return a if s else b
    if op == "MAJ3":
        return int(sum(bits) >= 2)
    raise AssertionError(op)


_VARIADIC = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR"]
_FIXED3 = ["AO21", "OA21", "MUX2", "MAJ3"]


@pytest.mark.parametrize("op", _VARIADIC)
@pytest.mark.parametrize("arity", [2, 3, 4, 5])
def test_variadic_ops_match_truth_table(op, arity):
    spec = gate_spec(op)
    mask = 1
    for bits in itertools.product((0, 1), repeat=arity):
        assert spec.evaluate(mask, *bits) == _truth(op, *bits), (op, bits)


@pytest.mark.parametrize("op", _FIXED3)
def test_three_input_ops_match_truth_table(op):
    spec = gate_spec(op)
    for bits in itertools.product((0, 1), repeat=3):
        assert spec.evaluate(1, *bits) == _truth(op, *bits), (op, bits)


@pytest.mark.parametrize("op", ["NOT", "BUF"])
def test_unary_ops(op):
    spec = gate_spec(op)
    for bit in (0, 1):
        assert spec.evaluate(1, bit) == _truth(op, bit)


def test_bit_parallel_evaluation_uses_mask():
    """NOT/NAND must respect the word mask for multi-vector words."""
    mask = 0b1111
    assert gate_spec("NOT").evaluate(mask, 0b0101) == 0b1010
    assert gate_spec("NAND").evaluate(mask, 0b1100, 0b1010) == 0b0111
    assert gate_spec("CONST1").evaluate(mask) == mask
    assert gate_spec("CONST0").evaluate(mask) == 0


def test_commutativity_flags():
    assert gate_spec("AND").commutative
    assert gate_spec("MAJ3").commutative
    assert not gate_spec("MUX2").commutative
    assert not gate_spec("AO21").commutative


def test_arity_metadata():
    assert gate_spec("AND").arity == -1
    assert gate_spec("NOT").arity == 1
    assert gate_spec("MUX2").arity == 3
    assert gate_spec("INPUT").arity == 0


def test_input_op_classification():
    assert is_input_op("INPUT")
    assert is_input_op("CONST0")
    assert is_input_op("CONST1")
    assert not is_input_op("AND")


def test_unknown_op_raises():
    with pytest.raises(KeyError):
        gate_spec("FROBNICATE")


def test_registry_is_complete():
    expected = {"INPUT", "CONST0", "CONST1", "BUF", "NOT", "AND", "OR",
                "XOR", "NAND", "NOR", "XNOR", "AO21", "OA21", "MUX2",
                "MAJ3", "DFF"}
    assert set(GATE_SPECS) == expected


def test_dff_is_state_not_combinational():
    from repro.circuit.gates import is_state_op

    assert is_state_op("DFF")
    assert not is_state_op("AND")
    with pytest.raises(RuntimeError):
        gate_spec("DFF").evaluate(1, 0)


def test_input_evaluation_is_an_error():
    with pytest.raises(RuntimeError):
        gate_spec("INPUT").evaluate(1)
