"""Area accounting: live logic only, per-op breakdown, normalisation."""

import pytest

from repro.circuit import Circuit, UMC180, UNIT, analyze_area, total_area


def _sample():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    live = c.add_gate("XOR", c.add_gate("AND", a, b), a)
    dead = c.add_gate("OR", a, b)  # not reachable from outputs
    c.set_output("y", live)
    return c


def test_unit_area_counts_live_gates():
    c = _sample()
    report = analyze_area(c, UNIT)
    assert report.total == pytest.approx(2.0)  # AND + XOR, dead OR excluded
    assert report.gate_count == 2


def test_per_op_breakdown():
    c = _sample()
    report = analyze_area(c, UMC180)
    assert set(report.by_op) == {"AND", "XOR"}
    assert report.total == pytest.approx(sum(report.by_op.values()))
    assert report.by_op["XOR"] == UMC180.cell("XOR", 2).area


def test_inputs_and_constants_are_free():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("y", a)
    c.set_output("one", c.const(1))
    assert total_area(c, UMC180) == 0.0


def test_normalized_to():
    big, small = _sample(), _sample()
    # Make `big` genuinely bigger.
    a = big.inputs["a"][0]
    b = big.inputs["b"][0]
    big.set_output("extra", big.add_gate("XNOR", a, b))
    r_big = analyze_area(big, UNIT)
    r_small = analyze_area(small, UNIT)
    assert r_big.normalized_to(r_small) == pytest.approx(3 / 2)
    with pytest.raises(ValueError):
        empty = Circuit("e")
        x = empty.add_input("x")
        empty.set_output("y", x)
        r_small.normalized_to(analyze_area(empty, UNIT))


def test_variadic_area_scales_with_arity():
    c = Circuit("t")
    bus = c.add_input_bus("x", 6)
    c.set_output("y", c.add_gate("AND", *bus))
    wide = total_area(c, UMC180)
    c2 = Circuit("t2")
    bus2 = c2.add_input_bus("x", 2)
    c2.set_output("y", c2.add_gate("AND", *bus2))
    narrow = total_area(c2, UMC180)
    assert wide > narrow
