"""BDD engine primitives the formal layer leans on.

Three properties make the formal method trustworthy: the variable order
is deterministic (so proofs and counterexamples are reproducible), the
interleaved order keeps every family datapath polynomial in the bitwidth
(PolyAdd, arXiv:2009.03242 — without this, 64-bit proofs would be
hopeless), and model counting agrees with brute-force enumeration on
every family wherever brute force is affordable.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.bdd import Bdd, interleaved_order
from repro.families.base import family_names, get_family
from repro.verify.formal import SymbolicAdder, golden_adder


# ----------------------------------------------------------- determinism
@pytest.mark.parametrize("name", family_names())
def test_interleaved_order_is_deterministic(name):
    fam = get_family(name)
    params = fam.resolve_params(16, window=4)
    c1 = fam.build_circuit(16, **params)
    c2 = fam.build_circuit(16, **params)
    o1, o2 = interleaved_order(c1), interleaved_order(c2)
    # Same circuit builder -> identical net ids -> identical order map,
    # and a/b bits strictly interleaved from the LSBs.
    assert o1 == o2
    levels_a = [o1[nid] for nid in c1.inputs["a"]]
    levels_b = [o1[nid] for nid in c1.inputs["b"]]
    assert sorted(levels_a + levels_b) == list(range(32))
    assert all(abs(la - lb) == 1 for la, lb in zip(levels_a, levels_b))


def test_golden_adder_is_canonical():
    """Two independent golden builds share pointers (unique table)."""
    m = Bdd(8)
    a_levels, b_levels = [0, 2, 4, 6], [1, 3, 5, 7]
    s1, c1 = golden_adder(m, a_levels, b_levels)
    s2, c2 = golden_adder(m, a_levels, b_levels)
    assert s1 == s2 and c1 == c2


# ------------------------------------------------------- reachable_size
def test_reachable_size_counts_only_live_nodes():
    m = Bdd(4)
    x, y = m.var(0), m.var(1)
    f = m.apply_and(x, y)
    m.apply_xor(m.var(2), m.var(3))  # dead weight for reachable_size(f)
    assert m.reachable_size(f) == 2
    assert m.reachable_size(Bdd.TRUE) == 0
    assert m.reachable_size(Bdd.FALSE) == 0
    assert m.reachable_size(f, y) == 2  # shared subgraphs counted once
    assert m.reachable_size() == 0
    assert m.reachable_size(f) < m.size()


@pytest.mark.parametrize("name", family_names())
def test_family_datapath_bdds_stay_polynomial(name):
    """PolyAdd-style bound: node growth is ~quadratic, never 2^n."""
    fam = get_family(name)

    def live_nodes(width):
        params = fam.resolve_params(width, window=4)
        sym = SymbolicAdder(fam.build_circuit(width, **params))
        roots = [r for bits in sym.outputs.values() for r in bits]
        roots += sym.golden_sums + [sym.golden_cout]
        return sym.manager.reachable_size(*roots)

    s8, s16 = live_nodes(8), live_nodes(16)
    assert s16 < 6000  # far below the 2^16 blow-up regime
    assert s16 < 5 * s8  # doubling the width multiplies nodes by < 5


# ----------------------------------------- counting vs brute force (n<=6)
@given(width=st.integers(2, 6), knob=st.integers(1, 6),
       name=st.sampled_from(family_names()))
def test_bdd_counts_equal_brute_force(width, knob, name):
    fam = get_family(name)
    params = fam.resolve_params(width, window=knob)
    sym = SymbolicAdder(fam.build_circuit(width, **params))
    functional = fam.functional(width, **params)

    errors = flags = 0
    for a in range(1 << width):
        for b in range(1 << width):
            if not functional.is_correct(a, b):
                errors += 1
            if functional.flags_error(a, b):
                flags += 1

    miter = sym.mismatch(sym.outputs["sum"], sym.outputs["cout"][0])
    assert sym.count(miter) == errors
    assert sym.count(sym.outputs["err"][0]) == flags
    # And the recovery path has no erroneous pair at all.
    assert sym.count(sym.mismatch(sym.outputs["sum_exact"],
                                  sym.outputs["cout_exact"][0])) == 0
