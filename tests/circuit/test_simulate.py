"""Simulation engine: scalar words, numpy vectors, helpers, errors."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    bus_to_int,
    int_to_bus,
    random_stimulus,
    simulate,
    simulate_bus_ints,
    simulate_words,
)


def _full_adder():
    c = Circuit("fa")
    a, b, ci = c.add_input("a"), c.add_input("b"), c.add_input("cin")
    p = c.add_gate("XOR", a, b)
    c.set_output("s", c.add_gate("XOR", p, ci))
    c.set_output("co", c.add_gate("MAJ3", a, b, ci))
    return c


def test_int_bus_round_trip():
    assert int_to_bus(0b1011, 4) == [1, 1, 0, 1]
    assert bus_to_int([1, 1, 0, 1]) == 0b1011
    assert bus_to_int(int_to_bus(12345, 20)) == 12345


def test_full_adder_exhaustive_single_vector():
    c = _full_adder()
    for a in (0, 1):
        for b in (0, 1):
            for ci in (0, 1):
                out = simulate_bus_ints(c, {"a": a, "b": b, "cin": ci})
                assert out["s"] == (a + b + ci) & 1
                assert out["co"] == (a + b + ci) >> 1


def test_bit_parallel_words_pack_vectors():
    """All 8 full-adder input combinations evaluated in one packed word."""
    c = _full_adder()
    a_w = b_w = ci_w = 0
    for j in range(8):
        a_w |= ((j >> 0) & 1) << j
        b_w |= ((j >> 1) & 1) << j
        ci_w |= ((j >> 2) & 1) << j
    out = simulate_words(c, {"a": [a_w], "b": [b_w], "cin": [ci_w]},
                         num_vectors=8)
    for j in range(8):
        a, b, ci = j & 1, (j >> 1) & 1, (j >> 2) & 1
        assert (out["s"][0] >> j) & 1 == (a + b + ci) & 1
        assert (out["co"][0] >> j) & 1 == (a + b + ci) >> 1


def test_numpy_vector_mode():
    c = _full_adder()
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2 ** 32, size=100, dtype=np.uint64)
    b = rng.integers(0, 2 ** 32, size=100, dtype=np.uint64)
    ci = rng.integers(0, 2 ** 32, size=100, dtype=np.uint64)
    out = simulate(c, {"a": [a], "b": [b], "cin": [ci]})
    expected_s = a ^ b ^ ci
    expected_co = (a & b) | (a & ci) | (b & ci)
    assert np.array_equal(out["s"][0], expected_s)
    assert np.array_equal(out["co"][0], expected_co)


def test_constants_in_simulation():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("y", c.add_gate("XOR", a, c.const(1)))
    c.set_output("zero", c.const(0))
    out = simulate_words(c, {"a": [0b01]}, num_vectors=2)
    assert out["y"][0] == 0b10
    assert out["zero"][0] == 0


def test_missing_stimulus_raises():
    c = _full_adder()
    with pytest.raises(CircuitError):
        simulate_words(c, {"a": [1], "b": [1]}, num_vectors=1)


def test_wrong_bus_width_raises():
    c = Circuit("t")
    c.add_input_bus("a", 3)
    c.set_output("y", c.inputs["a"][0])
    with pytest.raises(CircuitError):
        simulate_words(c, {"a": [1, 1]}, num_vectors=1)


def test_num_vectors_required_for_ints():
    c = _full_adder()
    with pytest.raises(CircuitError):
        simulate(c, {"a": [1], "b": [1], "cin": [0]})
    with pytest.raises(CircuitError):
        simulate(c, {"a": [1], "b": [1], "cin": [0]}, num_vectors=0)


def test_random_stimulus_shape_and_range():
    c = Circuit("t")
    c.add_input_bus("a", 65)  # force multi-chunk word generation
    c.add_input("b")
    c.set_output("y", c.inputs["a"][0])
    stim = random_stimulus(c, num_vectors=100, rng=np.random.default_rng(1))
    assert len(stim["a"]) == 65
    assert len(stim["b"]) == 1
    for word in stim["a"]:
        assert 0 <= word < (1 << 100)
    out = simulate_words(c, stim, num_vectors=100)
    assert out["y"][0] == stim["a"][0]


def test_int_to_bus_width_edge_cases():
    assert int_to_bus(1, 1) == [1]
    assert int_to_bus(0, 1) == [0]
    assert int_to_bus(5, 0) == []  # zero-width bus
    # MSB set: highest word carries the sign-position bit.
    assert int_to_bus(1 << 7, 8) == [0] * 7 + [1]
    # Value wider than the bus: high bits truncate away.
    assert int_to_bus(0b1_0110, 4) == [0, 1, 1, 0]
    assert int_to_bus((1 << 200) | 0b11, 2) == [1, 1]
    # Negative values contribute their two's-complement pattern.
    assert int_to_bus(-1, 4) == [1, 1, 1, 1]


def test_bus_to_int_edge_cases():
    assert bus_to_int([]) == 0
    assert bus_to_int([1]) == 1
    assert bus_to_int([0] * 63 + [1]) == 1 << 63
    # Only bit 0 of each word is read (words may be packed vectors).
    assert bus_to_int([0b10, 0b11]) == 0b10
    assert bus_to_int(int_to_bus(1 << 64, 65)) == 1 << 64


def test_int_bus_round_trip_wide_random():
    rng = np.random.default_rng(2)
    for width in (1, 2, 63, 64, 65, 1000):
        value = int.from_bytes(rng.bytes((width + 7) // 8), "little") & (
            (1 << width) - 1)
        assert bus_to_int(int_to_bus(value, width)) == value
