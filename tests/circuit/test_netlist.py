"""Circuit construction: hashing, folding, buses, invariants."""

import pytest

from repro.circuit import Circuit, CircuitError, simulate_bus_ints


def test_add_input_and_bus():
    c = Circuit("t")
    x = c.add_input("x")
    bus = c.add_input_bus("data", 4)
    assert c.nets[x].op == "INPUT"
    assert len(bus) == 4
    assert c.inputs["data"] == bus
    assert c.nets[bus[2]].name == "data[2]"
    assert c.nets[bus[2]].pos == 2.0


def test_duplicate_input_rejected():
    c = Circuit("t")
    c.add_input("x")
    with pytest.raises(CircuitError):
        c.add_input("x")
    with pytest.raises(CircuitError):
        c.add_input_bus("x", 3)


def test_bad_bus_width_rejected():
    c = Circuit("t")
    with pytest.raises(CircuitError):
        c.add_input_bus("z", 0)


def test_structural_hashing_dedupes_commutative():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    g1 = c.add_gate("AND", a, b)
    g2 = c.add_gate("AND", b, a)
    assert g1 == g2
    # Non-commutative ops must not be reordered.
    s = c.add_input("s")
    m1 = c.add_gate("MUX2", s, a, b)
    m2 = c.add_gate("MUX2", s, b, a)
    assert m1 != m2


def test_hashing_can_be_disabled():
    c = Circuit("t", use_strash=False)
    a, b = c.add_input("a"), c.add_input("b")
    assert c.add_gate("AND", a, b) != c.add_gate("AND", a, b)


def test_constant_folding_and_or():
    c = Circuit("t")
    a = c.add_input("a")
    zero, one = c.const(0), c.const(1)
    assert c.add_gate("AND", a, zero) == zero
    assert c.add_gate("AND", a, one) == a
    assert c.add_gate("OR", a, one) == one
    assert c.add_gate("OR", a, zero) == a
    assert c.add_gate("AND", a, a) == a
    assert c.add_gate("OR", a, a) == a


def test_constant_folding_not_xor():
    c = Circuit("t")
    a = c.add_input("a")
    zero, one = c.const(0), c.const(1)
    n = c.add_gate("NOT", a)
    assert c.add_gate("NOT", n) == a  # double inversion
    assert c.add_gate("NOT", zero) == one
    assert c.add_gate("XOR", a, zero) == a
    inv = c.add_gate("XOR", a, one)
    assert c.nets[inv].op == "NOT"
    assert c.add_gate("XOR", zero, one) == one


def test_constant_folding_complex_cells():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    zero, one = c.const(0), c.const(1)
    assert c.add_gate("AO21", a, b, one) == one
    assert c.nets[c.add_gate("AO21", a, b, zero)].op == "AND"
    assert c.add_gate("AO21", a, zero, b) == b
    assert c.add_gate("MUX2", one, a, b) == a
    assert c.add_gate("MUX2", zero, a, b) == b
    assert c.add_gate("MUX2", a, b, b) == b
    assert c.add_gate("MUX2", a, one, zero) == a
    assert c.add_gate("MAJ3", a, one, b) == c.add_gate("OR", a, b)
    assert c.add_gate("MAJ3", a, zero, b) == c.add_gate("AND", a, b)
    assert c.add_gate("MAJ3", one, one, a) == one


def test_degenerate_variadic_returns_operand():
    c = Circuit("t")
    a = c.add_input("a")
    assert c.add_gate("AND", a) == a
    assert c.add_gate("XOR", a) == a


def test_arity_validation():
    c = Circuit("t")
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_gate("NOT", a, a)
    with pytest.raises(CircuitError):
        c.add_gate("MUX2", a, a)
    with pytest.raises(CircuitError):
        c.add_gate("AND")


def test_fanin_must_exist():
    c = Circuit("t")
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_gate("NOT", 99)


def test_inputs_via_add_gate_rejected():
    c = Circuit("t")
    with pytest.raises(CircuitError):
        c.add_gate("INPUT")
    with pytest.raises(CircuitError):
        c.add_gate("CONST0")


def test_const_caching_and_validation():
    c = Circuit("t")
    assert c.const(0) == c.const(0)
    assert c.const(1) == c.const(1)
    assert c.const(0) != c.const(1)
    with pytest.raises(CircuitError):
        c.const(2)


def test_outputs_and_widths():
    c = Circuit("t")
    bus = c.add_input_bus("a", 3)
    c.set_output("y", bus)
    c.set_output("bit", bus[0])
    assert c.output_width("y") == 3
    assert c.output_width("bit") == 1
    assert c.input_width("a") == 3
    with pytest.raises(CircuitError):
        c.set_output("bad", [123])


def test_histogram_depth_fanout():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    x = c.add_gate("AND", a, b)
    y = c.add_gate("OR", x, a)
    c.set_output("y", y)
    hist = c.op_histogram()
    assert hist["AND"] == 1 and hist["OR"] == 1 and hist["INPUT"] == 2
    assert c.gate_count() == 2
    assert c.logic_depth() == 2
    counts = c.fanout_counts()
    assert counts[a] == 2  # feeds AND and OR
    assert c.max_fanout() == 2


def test_reachability():
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    live = c.add_gate("AND", a, b)
    dead = c.add_gate("OR", a, b)
    c.set_output("y", live)
    marks = c.reachable_from_outputs()
    assert marks[live] and not marks[dead]


def test_position_inheritance():
    c = Circuit("t")
    a = c.add_input("a", pos=3.0)
    b = c.add_input("b", pos=7.0)
    g = c.add_gate("AND", a, b)
    assert c.nets[g].pos == 7.0  # max of fanin positions
    g2 = c.add_gate("OR", a, b, pos=1.0)
    assert c.nets[g2].pos == 1.0  # explicit wins


def test_summary_mentions_counts():
    c = Circuit("half")
    a, b = c.add_input("a"), c.add_input("b")
    c.set_output("s", c.add_gate("XOR", a, b))
    text = c.summary()
    assert "half" in text and "1 gates" in text


def test_folding_produces_equivalent_logic():
    """Folded circuit must still compute the original function."""
    c = Circuit("t")
    a, b = c.add_input("a"), c.add_input("b")
    one = c.const(1)
    y = c.add_gate("AND", c.add_gate("OR", a, one), b)  # == b
    c.set_output("y", y)
    for va in (0, 1):
        for vb in (0, 1):
            assert simulate_bus_ints(c, {"a": va, "b": vb})["y"] == vb
