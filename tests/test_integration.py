"""End-to-end integration flows across the whole toolchain."""

import os

import pytest

from repro.adders import build_best_traditional, build_ripple_adder
from repro.analysis import aca_error_probability, choose_window
from repro.arch import VlsaMachine
from repro.circuit import (
    UMC180,
    analyze_timing,
    generate_tests,
    insert_buffers,
    prove_equivalent,
    rebuild,
    serialize,
    simulate_bus_ints,
    sweep_dead_logic,
)
from repro.core import build_aca, build_recovery_adder, build_vlsa_datapath
from repro.generator import export_design


def test_design_to_silicon_flow(tmp_path):
    """Generate -> optimise -> buffer -> serialise -> reload -> prove ->
    ATPG -> export: the full release pipeline on one design."""
    width, window = 12, 4
    circuit = build_recovery_adder(width, window)

    swept, _ = sweep_dead_logic(circuit)
    optimised, _ = rebuild(swept)
    buffered, _ = insert_buffers(optimised, max_fanout=4)

    # Persist and reload.
    path = tmp_path / "design.json"
    serialize.save(buffered, str(path))
    reloaded = serialize.load(str(path))

    # The reloaded, transformed design still equals a reference adder.
    ok, reason = prove_equivalent(build_ripple_adder(width), reloaded,
                                  outputs=["sum", "cout"])
    assert ok, reason

    # Complete manufacturing test set.
    atpg = generate_tests(reloaded, random_vectors=32, seed=0)
    assert atpg.coverage == pytest.approx(1.0)

    # And the RTL bundle.
    files = export_design("recovery", width, str(tmp_path), window=window)
    assert len(files) == 5


def test_analysis_predicts_machine_behaviour():
    """The exact error model, the functional model and the pipeline
    machine must tell one consistent story."""
    import random

    width = 48
    window = choose_window(width, 0.999)  # higher rate -> visible stalls
    machine = VlsaMachine(width, window=window)
    rng = random.Random(5)
    ops = 30000
    trace = machine.run([(rng.getrandbits(width), rng.getrandbits(width))
                         for _ in range(ops)])

    from repro.analysis import detector_flag_probability

    p_flag = detector_flag_probability(width, window)
    measured = trace.stall_count / ops
    assert measured == pytest.approx(p_flag, rel=0.5, abs=2e-4)
    p_err = aca_error_probability(width, window)
    spec_wrong = sum(1 for r in trace.results
                     if not r.speculative_correct) / ops
    assert spec_wrong <= measured
    assert spec_wrong == pytest.approx(p_err, rel=0.6, abs=2e-4)


def test_gate_level_and_functional_agree_on_vlsa_outputs(rng):
    """The VLSA datapath circuit and the AcaModel the machine uses must
    agree bit for bit, including the error flag."""
    from repro.mc import AcaModel, detector_flag

    width, window = 20, 5
    circuit = build_vlsa_datapath(width, window)
    model = AcaModel(width, window)
    for _ in range(300):
        a, b = rng.getrandbits(width), rng.getrandbits(width)
        out = simulate_bus_ints(circuit, {"a": a, "b": b})
        s, cout = model.add(a, b)
        assert (out["sum"], out["cout"]) == (s, cout)
        assert out["err"] == int(model.flags_error(a, b))
        assert (out["sum_exact"], out["cout_exact"]) == model.exact(a, b)


def test_timing_story_is_self_consistent():
    """Fig. 8 invariants at one width, checked end to end."""
    width = 128
    window = choose_window(width)
    best = build_best_traditional(width, UMC180)
    aca_delay = analyze_timing(build_aca(width, window),
                               UMC180).critical_delay
    assert aca_delay < best.delay
    # The UNIT-depth prediction must match the analytic formula.
    from repro.analysis import aca_depth, prefix_adder_depth
    from repro.circuit import UNIT

    assert analyze_timing(build_aca(width, window),
                          UNIT).critical_delay == aca_depth(width, window)
    assert prefix_adder_depth(width) > aca_depth(width, window)
