"""Reporting helpers: tables, ASCII charts, artifact files."""

import os

import pytest

from repro.reporting import Table, ascii_chart, results_dir, save_artifact


def test_table_render_alignment():
    t = Table("Demo", ["name", "value"])
    t.add_row("alpha", 1)
    t.add_row("a-much-longer-name", 123456)
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "alpha" in text and "123456" in text
    # All data rows share one width.
    widths = {len(line) for line in lines[2:5]}
    assert len(widths) == 1


def test_table_formatting_rules():
    t = Table("F", ["x"])
    t.add_row(0.000012)
    t.add_row(1234567.0)
    t.add_row(3.14159)
    t.add_row("literal")
    col = [r[0] for r in t.rows]
    assert col[0] == "1.200e-05"
    assert col[1] == "1.235e+06"
    assert col[2] == "3.142"
    assert col[3] == "literal"


def test_table_row_arity_checked():
    t = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_note_and_csv():
    t = Table("T", ["a", "b"])
    t.add_row("x,y", 2)
    t.note = "a note"
    assert "a note" in t.render()
    csv = t.to_csv()
    assert csv.splitlines()[0] == "a,b"
    assert '"x,y"' in csv


def test_ascii_chart_basic():
    chart = ascii_chart("C", ["64", "128"], {"s1": [1.0, 2.0],
                                             "s2": [2.0, 4.0]})
    assert "C" in chart
    assert "legend" in chart
    assert "s1" in chart and "s2" in chart
    assert "64" in chart and "128" in chart


def test_ascii_chart_validation_and_degenerate():
    with pytest.raises(ValueError):
        ascii_chart("C", ["a"], {"s": [1.0, 2.0]})
    flat = ascii_chart("C", ["a", "b"], {"s": [5.0, 5.0]})
    assert "legend" in flat
    empty = ascii_chart("C", [], {})
    assert "no data" in empty


def test_artifacts_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
    path = save_artifact("x.txt", "hello")
    assert path.startswith(str(tmp_path / "r"))
    assert open(path).read() == "hello"
    assert results_dir() == str(tmp_path / "r")
