"""RTL generator front-end (the paper's VHDL-emitting tool)."""

import json
import os

import pytest

from repro.cli import main
from repro.generator import DESIGN_KINDS, build_design, export_design


def test_design_registry():
    for kind in ("aca", "vlsa", "detector", "recovery", "multiplier",
                 "booth", "subtractor", "incrementer", "ripple",
                 "kogge_stone"):
        assert kind in DESIGN_KINDS


def test_build_design_defaults_window():
    c = build_design("aca", 64)
    from repro.analysis import choose_window

    assert c.attrs["window"] == choose_window(64)
    c2 = build_design("aca", 64, window=8)
    assert c2.attrs["window"] == 8


def test_unknown_kind():
    with pytest.raises(KeyError):
        build_design("flux", 8)


def test_export_writes_all_artifacts(tmp_path):
    written = export_design("aca", 16, str(tmp_path), window=5)
    assert len(written) == 5
    exts = sorted(os.path.splitext(p)[1] for p in written)
    assert exts == [".json", ".txt", ".v", ".v", ".vhd"]
    for path in written:
        assert os.path.getsize(path) > 0
    json_path = next(p for p in written if p.endswith(".json"))
    data = json.loads(open(json_path).read())
    assert data["name"] == "aca16_w5"


def test_exported_json_round_trips(tmp_path):
    from repro.circuit import serialize, simulate_bus_ints

    export_design("ripple", 8, str(tmp_path))
    circuit = serialize.load(str(tmp_path / "ripple8.json"))
    out = simulate_bus_ints(circuit, {"a": 100, "b": 55})
    assert out["sum"] == 155


def test_cli_export_command(tmp_path, capsys):
    rc = main(["export", "detector", "--width", "16", "--window", "5",
               "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "error_detect16_w5.vhd" in out
    assert (tmp_path / "error_detect16_w5_tb.v").exists()


def test_cli_export_baseline_adder(tmp_path):
    rc = main(["export", "brent_kung", "--width", "12",
               "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "brent_kung12.v").exists()


def test_stats_module():
    from repro.circuit.stats import collect_stats, format_stats
    from repro.circuit import UMC180

    c = build_design("aca", 16, window=5)
    stats = collect_stats(c, UMC180)
    assert stats.gates == c.gate_count()
    assert stats.inputs == 32
    text = format_stats(stats)
    assert "critical delay" in text
    assert "XOR" in text
