"""Golden snapshots of every generated netlist.

The generator is the paper's "C++ program that generates VHDL files" —
its output is the reproduction's primary artefact, so every design kind
is pinned by the SHA-256 of its emitted VHDL **and** Verilog at a fixed
width.  An intentional change to a builder or an emitter is a one-liner:

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/golden -q

then review the diff of ``netlist_digests.json`` like any other code.
"""

import json
import os
from pathlib import Path

import pytest

from repro.generator import DESIGN_KINDS, design_digest

GOLDEN = Path(__file__).with_name("netlist_digests.json")
WIDTH = 8


def _load_golden():
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        data = {kind: design_digest(kind, WIDTH)
                for kind in sorted(DESIGN_KINDS)}
        GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


GOLDEN_DIGESTS = _load_golden()


def test_snapshot_covers_every_design_kind():
    """New design kinds must be snapshotted; removed ones pruned."""
    assert set(GOLDEN_DIGESTS) == set(DESIGN_KINDS)


@pytest.mark.parametrize("kind", sorted(DESIGN_KINDS))
def test_generated_hdl_matches_golden(kind):
    got = design_digest(kind, WIDTH)
    want = GOLDEN_DIGESTS[kind]
    assert got == want, (
        f"{kind}: emitted HDL changed (vhdl/verilog digests differ). "
        f"If intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and "
        f"review the json diff.")


def test_emission_is_deterministic():
    """Two independent builds emit byte-identical HDL."""
    for kind in ("aca_r", "cesa_r", "blockspec_r"):
        assert design_digest(kind, WIDTH) == design_digest(kind, WIDTH)
