"""RunContext: seeds, counters, phases, manifests, default context."""

import json

import numpy as np
import pytest

from repro.engine import (
    RunContext,
    get_default_context,
    resolve_rng,
    set_default_context,
    spawn_seeds,
)
from repro.engine.context import DEFAULT_SEED


def test_spawn_seeds_deterministic_and_order_free():
    a = spawn_seeds(42, 5)
    b = spawn_seeds(42, 5)
    assert a == b
    assert len(set(a)) == 5  # children are distinct
    # A prefix of a longer spawn matches: child i depends only on
    # (root, i), which is what makes sharded runs order-independent.
    assert spawn_seeds(42, 3) == a[:3]
    assert spawn_seeds(43, 5) != a


def test_spawn_seed_records_provenance():
    ctx = RunContext(seed=9)
    s0 = ctx.spawn_seed("shard0")
    s1 = ctx.spawn_seed("shard1")
    assert s0 != s1
    spawned = ctx.snapshot()["spawned_seeds"]
    assert [e["label"] for e in spawned] == ["shard0", "shard1"]
    assert [e["seed"] for e in spawned] == [s0, s1]
    # Same seed, same spawn sequence -> same children.
    ctx2 = RunContext(seed=9)
    assert ctx2.spawn_seed("x") == s0


def test_counters_accumulate():
    ctx = RunContext()
    ctx.add("gate_evals", 10)
    ctx.add("gate_evals", 5)
    ctx.add("vectors")
    assert ctx.gate_evals == 15
    assert ctx.counters["vectors"] == 1


def test_phase_timer_accumulates():
    ctx = RunContext()
    with ctx.phase("run"):
        pass
    first = ctx.phases["run"]
    with ctx.phase("run"):
        pass
    assert ctx.phases["run"] >= first
    assert set(ctx.snapshot()["phase_seconds"]) == {"run"}


def test_snapshot_is_json_serialisable(tmp_path):
    ctx = RunContext(seed=4, backend="numpy", label="unit")
    ctx.add("gate_evals", 3)
    with ctx.phase("p"):
        pass
    path = ctx.write_manifest(str(tmp_path / "m.json"))
    with open(path, encoding="utf-8") as f:
        manifest = json.load(f)
    assert manifest["seed"] == 4
    assert manifest["backend"] == "numpy"
    assert manifest["label"] == "unit"
    assert manifest["gate_evals"] == 3
    assert "p" in manifest["phase_seconds"]
    assert manifest == ctx.as_manifest()


def test_rng_seeded_from_context_seed():
    x = RunContext(seed=123).rng.integers(0, 1 << 30)
    y = RunContext(seed=123).rng.integers(0, 1 << 30)
    assert x == y


def test_resolve_rng_precedence():
    explicit = np.random.default_rng(1)
    assert resolve_rng(explicit) is explicit
    ctx = RunContext(seed=2)
    assert resolve_rng(None, ctx) is ctx.rng
    assert resolve_rng() is get_default_context().rng


@pytest.fixture
def restore_default_context():
    original = get_default_context()
    yield
    set_default_context(original)


def test_set_default_context(restore_default_context):
    ctx = RunContext(seed=77, backend="numpy")
    assert set_default_context(ctx) is ctx
    assert get_default_context() is ctx
    assert get_default_context().seed == 77


def test_default_seed_is_zero():
    assert DEFAULT_SEED == 0
    assert RunContext().seed == 0
