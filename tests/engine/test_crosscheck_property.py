"""Property-based cross-check of every ACA implementation in the repo.

Four independent implementations of approximate (ACA) addition must
agree bit-for-bit on every input:

* the compiled engine, once per registered backend,
* the legacy per-gate interpreter (``simulate_interpreted``),
* the functional fast model (``repro.mc.fastsim.AcaModel``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import simulate_interpreted
from repro.core import build_aca
from repro.engine import available_backends, execute_ints
from repro.engine.functional import functional_model
from repro.engine.pack import pack_vectors, unpack_vectors


@st.composite
def aca_cases(draw):
    width = draw(st.integers(min_value=2, max_value=96))
    window = draw(st.integers(min_value=1, max_value=width))
    count = draw(st.integers(min_value=1, max_value=9))
    bound = (1 << width) - 1
    ints = st.lists(st.integers(0, bound), min_size=count, max_size=count)
    return width, window, {"a": draw(ints), "b": draw(ints)}


@settings(max_examples=40)
@given(aca_cases())
def test_every_backend_matches_interpreter_and_model(case):
    width, window, vectors = case
    circuit = build_aca(width, window)
    count = len(vectors["a"])

    # Reference 1: the legacy per-gate interpreter on packed words.
    stim = {name: pack_vectors(vals, width) for name, vals in vectors.items()}
    reference = {
        name: unpack_vectors(words, count)
        for name, words in simulate_interpreted(
            circuit, stim, num_vectors=count).items()
    }

    # Reference 2: the functional fast model used by the Monte Carlo layer.
    modeled = functional_model("aca", width=width, window=window).run_ints(
        vectors)
    assert modeled["sum"] == reference["sum"]
    assert modeled["cout"] == reference["cout"]

    # Every registered engine backend agrees bit-for-bit.
    for backend in available_backends():
        out = execute_ints(circuit, vectors, backend=backend)
        assert out == reference, f"{backend} diverged at width={width}"
