"""Transposition and bulk-random helpers of repro.engine.pack."""

import numpy as np
import pytest

from repro.engine import pack


@pytest.mark.parametrize("width", [1, 7, 8, 63, 64, 65, 130])
@pytest.mark.parametrize("count", [1, 3, 64, 65])
def test_pack_unpack_roundtrip(width, count):
    rng = np.random.default_rng(width * 1000 + count)
    values = [int.from_bytes(rng.bytes((width + 7) // 8), "little")
              & ((1 << width) - 1) for _ in range(count)]
    words = pack.pack_vectors(values, width)
    assert len(words) == width
    assert pack.unpack_vectors(words, count) == values


def test_pack_masks_excess_bits():
    # A value wider than the bus contributes only its low bits.
    words = pack.pack_vectors([0b1111], 2)
    assert words == [1, 1]


def test_pack_matches_naive_definition():
    values = [0b101, 0b011, 0b110]
    words = pack.pack_vectors(values, 3)
    for bit in range(3):
        expect = 0
        for j, v in enumerate(values):
            expect |= ((v >> bit) & 1) << j
        assert words[bit] == expect


@pytest.mark.parametrize("num_vectors", [1, 63, 64, 65, 200])
def test_word_u64_roundtrip(num_vectors):
    rng = np.random.default_rng(num_vectors)
    word = int.from_bytes(rng.bytes((num_vectors + 7) // 8), "little") & (
        (1 << num_vectors) - 1)
    arr = pack.word_to_u64(word, num_vectors)
    assert arr.dtype == np.uint64
    assert len(arr) == (num_vectors + 63) // 64
    assert pack.u64_to_word(arr, num_vectors) == word


def test_random_word_bounds_and_determinism():
    a = pack.random_word(np.random.default_rng(5), 67)
    b = pack.random_word(np.random.default_rng(5), 67)
    assert a == b
    assert 0 <= a < (1 << 67)


def test_random_word_array_tail_masked():
    rng = np.random.default_rng(9)
    arr = pack.random_word_array(rng, 70)  # 2 words, 6 live tail bits
    assert len(arr) == 2
    assert int(arr[1]) < (1 << 6)
