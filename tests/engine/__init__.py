"""Tests for the compiled execution engine."""
