"""Compiler invariants: fusion, lowering, dead logic, plan caching."""

import pytest

from repro.circuit import Circuit, CircuitError, simulate_interpreted
from repro.engine import compile_circuit, compiled_plan, execute_ints
from repro.engine.plan import OP_AND, OP_COPY


def _not_of_and():
    c = Circuit("not_of_and")
    a = c.add_input("a")
    b = c.add_input("b")
    g = c.add_gate("AND", a, b)
    c.set_output("y", c.add_gate("NOT", g))
    return c


def test_not_fusion_flips_invert_flag():
    plan = compile_circuit(_not_of_and())
    # One AND step with invert absorbed; no COPY step for the NOT.
    gate_steps = [s for s in plan.steps]
    assert len(gate_steps) == 1
    opcode, _out, _ins, inv = gate_steps[0]
    assert opcode == OP_AND and inv is True
    assert execute_ints(_not_of_and(), {"a": [1, 1, 0], "b": [1, 0, 0]})[
        "y"] == [0, 1, 1]


def test_not_fusion_skipped_for_multi_consumer():
    c = Circuit("shared")
    a = c.add_input("a")
    b = c.add_input("b")
    g = c.add_gate("AND", a, b)
    c.set_output("y", c.add_gate("NOT", g))
    c.set_output("z", g)  # second consumer: fusion must not flip g
    plan = compile_circuit(c)
    out = execute_ints(c, {"a": [1], "b": [1]})
    assert out == {"y": [0], "z": [1]}
    assert not plan.inverted_nids  # nothing complemented in place


def test_not_of_input_is_explicit_copy():
    c = Circuit("inv_in")
    a = c.add_input("a")
    c.set_output("y", c.add_gate("NOT", a))
    plan = compile_circuit(c)
    assert [s[0] for s in plan.steps] == [OP_COPY]
    assert plan.steps[0][3] is True
    assert execute_ints(c, {"a": [0, 1]})["y"] == [1, 0]


def test_buf_aliases_without_step():
    c = Circuit("buf")
    a = c.add_input("a")
    c.set_output("y", c.add_gate("BUF", a))
    plan = compile_circuit(c)
    assert plan.steps == []
    assert plan.output_slots["y"] == plan.input_slots["a"]


def test_variadic_decomposes_to_binary_chain():
    c = Circuit("wide_or")
    ins = [c.add_input(n) for n in "abcd"]
    c.set_output("y", c.add_gate("NOR", *ins))
    plan = compile_circuit(c)
    assert len(plan.steps) == 3  # 4-input OR -> 3 binary ORs
    assert plan.steps[-1][3] is True  # invert lands on the last step only
    assert all(s[3] is False for s in plan.steps[:-1])
    stim = {n: [v] for n, v in zip("abcd", [0, 0, 0, 0])}
    assert execute_ints(c, stim)["y"] == [1]


def test_dead_logic_eliminated():
    c = Circuit("dead")
    a = c.add_input("a")
    b = c.add_input("b")
    live = c.add_gate("XOR", a, b)
    c.add_gate("AND", a, b)  # never drives an output
    c.set_output("y", live)
    plan = compile_circuit(c)
    assert len(plan.steps) == 1
    dead = [n.nid for n in c.nets if n.op == "AND"][0]
    with pytest.raises(CircuitError):
        plan.slot_of(dead)


def test_constants_preset_not_evaluated():
    # fold_constants=False so AND(a, 1) is not simplified away at build time.
    c = Circuit("consts", fold_constants=False)
    a = c.add_input("a")
    c.set_output("y", c.add_gate("AND", a, c.const(1)))
    plan = compile_circuit(c)
    assert len(plan.const_slots) == 1
    assert plan.const_slots[0][1] == 1
    assert execute_ints(c, {"a": [0, 1]})["y"] == [0, 1]


def test_sequential_rejected_like_interpreter():
    c = Circuit("seq")
    a = c.add_input("a")
    d = c.add_dff("q_reg")
    c.connect_dff(d, a)
    c.set_output("q", d)
    with pytest.raises(RuntimeError):
        compile_circuit(c)


def test_plan_cache_hit_and_invalidation():
    c = Circuit("cache")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("y", c.add_gate("AND", a, b))
    p1 = compiled_plan(c)
    assert compiled_plan(c) is p1  # identity hit
    # Growing the circuit invalidates the cached plan.
    c.set_output("z", c.add_gate("OR", a, b))
    p2 = compiled_plan(c)
    assert p2 is not p1
    assert "z" in p2.output_slots


def test_unfused_plan_keeps_every_live_net_observable():
    c = _not_of_and()
    plan = compile_circuit(c, fuse=False)
    assert not plan.fused
    for net in c.nets:
        assert plan.nid_to_slot[net.nid] >= 0
    assert not plan.inverted_nids


def test_compiled_matches_interpreter_on_all_gate_types():
    c = Circuit("zoo")
    a = c.add_input("a")
    b = c.add_input("b")
    s = c.add_input("s")
    nodes = [
        c.add_gate("AND", a, b), c.add_gate("NAND", a, b),
        c.add_gate("OR", a, b), c.add_gate("NOR", a, b),
        c.add_gate("XOR", a, b), c.add_gate("XNOR", a, b),
        c.add_gate("AO21", a, b, s), c.add_gate("OA21", a, b, s),
        c.add_gate("MUX2", s, a, b), c.add_gate("MAJ3", a, b, s),
        c.add_gate("NOT", a), c.add_gate("BUF", b),
        c.add_gate("AND", a, b, s), c.add_gate("XOR", a, b, s),
    ]
    for i, n in enumerate(nodes):
        c.set_output(f"o{i}", n)
    n = 8  # exhaustive over 3 inputs
    stim = {"a": [0b10101010], "b": [0b11001100], "s": [0b11110000]}
    from repro.circuit import simulate

    assert simulate(c, stim, num_vectors=n) == simulate_interpreted(
        c, stim, num_vectors=n)
