"""Backend equivalence, sharded merge, forcing, and registry errors."""

import numpy as np
import pytest

from repro.circuit import CircuitError, simulate_interpreted
from repro.core import build_aca
from repro.engine import (
    RunContext,
    available_backends,
    compiled_plan,
    execute,
    get_backend,
    merge_shard_words,
)
from repro.engine.pack import random_word


def _stimulus(circuit, num_vectors, seed=7):
    rng = np.random.default_rng(seed)
    return {name: [random_word(rng, num_vectors) for _ in bus]
            for name, bus in circuit.inputs.items()}


@pytest.fixture(scope="module")
def aca():
    return build_aca(32, 8)


def test_all_backends_bit_identical(aca):
    n = 777  # odd count exercises the tail mask and shard remainder
    stim = _stimulus(aca, n)
    reference = simulate_interpreted(aca, stim, num_vectors=n)
    for name in available_backends():
        out = execute(aca, stim, num_vectors=n, backend=name)
        assert out == reference, f"backend {name} diverged"


def test_sharded_split_covers_range(aca):
    backend = get_backend("sharded")
    shards = backend.split({}, 1 << 16 | 123)
    assert shards[0][0] == 0
    assert sum(cnt for _off, cnt in shards) == (1 << 16 | 123)
    offs = [off for off, _cnt in shards]
    assert offs == sorted(offs)


def test_merge_shard_words_order_independent(aca):
    n = 300
    stim = _stimulus(aca, n)
    full = execute(aca, stim, num_vectors=n, backend="bigint")
    # Build three shards by slicing the stimulus and running each alone.
    cuts = [(0, 100), (100, 120), (220, 80)]
    shards = []
    for off, cnt in cuts:
        mask = (1 << cnt) - 1
        sub = {k: [(w >> off) & mask for w in words]
               for k, words in stim.items()}
        shards.append((off, execute(aca, sub, num_vectors=cnt,
                                    backend="bigint")))
    for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]):
        merged = merge_shard_words([shards[i] for i in order])
        assert merged == full


def test_force_semantics_analytic():
    # y = XOR(AND(a, b), a); forcing the AND to a constant makes the
    # output analytically predictable for every vector.
    from repro.circuit import Circuit

    c = Circuit("forceable")
    a = c.add_input("a")
    b = c.add_input("b")
    g = c.add_gate("AND", a, b)
    c.set_output("y", c.add_gate("XOR", g, a))
    n = 64
    rng = np.random.default_rng(11)
    wa, wb = random_word(rng, n), random_word(rng, n)
    stim = {"a": [wa], "b": [wb]}
    mask = (1 << n) - 1
    forced1 = execute(c, stim, num_vectors=n, force={g: 1})
    assert forced1["y"] == [(~wa) & mask]  # XOR(1, a) == NOT a
    forced0 = execute(c, stim, num_vectors=n, force={g: 0})
    assert forced0["y"] == [wa]  # XOR(0, a) == a
    baseline = execute(c, stim, num_vectors=n)
    assert baseline["y"] == [(wa & wb) ^ wa]


def test_numpy_and_sharded_reject_force(aca):
    stim = _stimulus(aca, 8)
    for name in ("numpy", "sharded"):
        with pytest.raises(CircuitError):
            get_backend(name).run(compiled_plan(aca, fuse=False), stim, 8,
                                  force={0: 1})


def test_unknown_backend_raises():
    with pytest.raises(CircuitError):
        get_backend("quantum")


def test_context_accounting(aca):
    ctx = RunContext(seed=3, backend="numpy")
    n = 256
    execute(aca, _stimulus(aca, n), num_vectors=n, backend="numpy", ctx=ctx)
    snap = ctx.snapshot()
    assert snap["counters"]["vectors"] == n
    assert snap["counters"]["gate_evals"] > 0
    assert snap["counters"]["runs_numpy"] == 1


def test_numpy_run_u64_shape_validation(aca):
    backend = get_backend("numpy")
    plan = compiled_plan(aca)
    rows = {name: np.zeros((2, 1), dtype=np.uint64) for name in aca.inputs}
    with pytest.raises(CircuitError):
        backend.run_u64(plan, rows, nwords=3)
