"""Stall-heavy streams: clocking and VCD under back-to-back detector fires.

An adversarial all-propagate stream makes the detector fire on every
operation, which is the worst case for the VALID/STALL handshake: the
busy register must hold through every recovery window, the clock must
account for every stall cycle, and the VCD stall wire must toggle once
per operation without ever merging adjacent pulses.
"""

import pytest

from repro.arch import ClockDomain, VlsaMachine


def _all_propagate_pairs(width, count):
    """Pairs whose carry chain spans the whole word (detector always fires)."""
    return [((1 << width) - 2, 1)] * count


def _parse_vcd_changes(text, name):
    """Return [(time, value)] for the named scalar signal in VCD *text*."""
    ident = None
    for line in text.splitlines():
        if line.startswith("$var") and f" {name} " in line:
            ident = line.split()[3]
            break
    assert ident is not None, f"signal {name} not declared"
    changes, time = [], None
    for line in text.splitlines():
        if line.startswith("#"):
            time = int(line[1:])
        elif time is not None and line.endswith(ident) and len(line) == 1 + len(ident):
            changes.append((time, int(line[0])))
    return changes


def test_every_op_stalls_and_cycles_add_up():
    n, recovery = 50, 2
    machine = VlsaMachine(8, window=2, recovery_cycles=recovery)
    # 0xFF + 1 generates at bit 0 and propagates across the whole word,
    # so every speculation is genuinely wrong and every op stalls.
    trace = machine.run([(0xFF, 1)] * n)
    assert trace.stall_count == n
    assert all(r.latency_cycles == 1 + recovery for r in trace.results)
    assert trace.total_cycles == n * (1 + recovery)
    assert trace.average_latency_cycles == pytest.approx(1 + recovery)
    # Recovery still presents the exact result every time.
    assert all(r.sum_out == 0 and r.cout == 1 for r in trace.results)
    assert all(not r.speculative_correct for r in trace.results)


def test_accept_cycles_spaced_by_full_stall_latency():
    recovery = 3
    machine = VlsaMachine(8, window=2, recovery_cycles=recovery)
    trace = machine.run(_all_propagate_pairs(8, 10))
    accepts = [r.accept_cycle for r in trace.results]
    assert accepts == [i * (1 + recovery) for i in range(10)]


def test_clock_time_advances_with_stall_cycles():
    period = 2.5
    machine = VlsaMachine(8, window=2, recovery_cycles=1, clock_period=period)
    trace = machine.run(_all_propagate_pairs(8, 20))
    assert machine.clock.cycle == trace.total_cycles == 40
    assert machine.clock.now == pytest.approx(40 * period)
    assert trace.average_latency_time == pytest.approx(2 * period)


def test_busy_register_holds_through_recovery():
    """The busy flop must stay asserted for every stall cycle (Fig. 6)."""
    clk = ClockDomain()
    busy = clk.register(0, "busy")
    observed = []
    busy.set_next(1)
    clk.tick()  # accept
    for _ in range(3):  # recovery window: explicit re-assert each cycle
        observed.append(busy.q)
        busy.set_next(1)
        clk.tick()
    observed.append(busy.q)
    busy.set_next(0)
    clk.tick()
    observed.append(busy.q)
    assert observed == [1, 1, 1, 1, 0]


def test_register_hold_keeps_value_across_many_edges():
    clk = ClockDomain()
    r = clk.register(0xAB, "op")
    for _ in range(5):
        r.hold()
        clk.tick()
    assert r.q == 0xAB
    assert clk.cycle == 5


def test_mixed_stream_interleaves_stall_and_fast_ops():
    machine = VlsaMachine(8, window=3, recovery_cycles=2)
    # Propagate runs: 2, 8, 2, 8, 2 bits against a 3-bit window.
    pairs = [(1, 2), (0xFE, 1), (4, 2), (0xFE, 1), (2, 1)]
    trace = machine.run(pairs)
    assert [r.stalled for r in trace.results] == [False, True, False,
                                                  True, False]
    assert trace.total_cycles == 3 * 1 + 2 * 3
    accepts = [r.accept_cycle for r in trace.results]
    assert accepts == [0, 1, 4, 5, 8]


def test_vcd_stall_pulses_stay_distinct_back_to_back():
    """Adjacent stall pulses must not merge: 0 -> 1 at accept+1, 1 -> 0
    exactly when the corrected sum goes VALID, for every operation."""
    n, recovery = 5, 2
    machine = VlsaMachine(8, window=2, recovery_cycles=recovery)
    trace = machine.run(_all_propagate_pairs(8, n))
    stall = _parse_vcd_changes(trace.to_vcd(), "stall")
    expected = [(0, 0)]
    for r in trace.results:
        expected.append((r.accept_cycle + 1, 1))
        expected.append((r.accept_cycle + r.latency_cycles, 0))
    assert stall == expected
    # Strictly alternating values at strictly increasing timestamps.
    times = [t for t, _ in stall]
    values = [v for _, v in stall]
    assert times == sorted(times) and len(set(times)) == len(times)
    assert all(x != y for x, y in zip(values, values[1:]))


def test_vcd_valid_fires_once_per_op_under_stalls():
    n = 4
    machine = VlsaMachine(8, window=2, recovery_cycles=1)
    trace = machine.run(_all_propagate_pairs(8, n))
    valid = _parse_vcd_changes(trace.to_vcd(), "valid")
    rises = [t for t, v in valid if v == 1]
    assert rises == [r.accept_cycle + r.latency_cycles
                     for r in trace.results]


def test_vcd_renders_vector_sum_after_recovery():
    machine = VlsaMachine(8, window=2, recovery_cycles=1)
    trace = machine.run([(0xFE, 1)])
    text = trace.to_vcd()
    # Corrected sum 0xFF appears at the recovery timestamp, not cycle 1.
    assert "#2" in text
    assert "b11111111" in text.split("#2")[1]
