"""Cycle-accurate VLSA machine: latency accounting and correctness."""

import pytest

from repro.arch import VlsaMachine
from repro.mc import detector_flag


def _random_pairs(rng, width, count):
    return [(rng.getrandbits(width), rng.getrandbits(width))
            for _ in range(count)]


def test_every_result_is_correct(rng):
    machine = VlsaMachine(16, window=3)  # small window: frequent stalls
    pairs = _random_pairs(rng, 16, 500)
    trace = machine.run(pairs)
    mask = 0xFFFF
    for r in trace.results:
        total = r.a + r.b
        assert r.sum_out == total & mask
        assert r.cout == total >> 16
    assert trace.stall_count > 0


def test_latency_is_one_unless_flagged(rng):
    width, window = 16, 4
    machine = VlsaMachine(width, window=window)
    pairs = _random_pairs(rng, width, 400)
    trace = machine.run(pairs)
    for r in trace.results:
        expected_flag = detector_flag(r.a, r.b, width, window)
        assert r.stalled == expected_flag
        assert r.latency_cycles == (2 if expected_flag else 1)
        if not r.stalled:
            assert r.speculative_correct


def test_total_cycles_equals_sum_of_latencies(rng):
    machine = VlsaMachine(16, window=3, recovery_cycles=2)
    trace = machine.run(_random_pairs(rng, 16, 200))
    assert trace.total_cycles == sum(r.latency_cycles
                                     for r in trace.results)
    assert trace.operations == 200


def test_average_latency_near_one_at_9999_window(rng):
    machine = VlsaMachine(64)  # default 99.99% window
    trace = machine.run(_random_pairs(rng, 64, 20000))
    assert 1.0 <= trace.average_latency_cycles < 1.002


def test_forced_stall_scenario():
    """A full-width carry chain must stall; a trivial add must not."""
    width = 32
    machine = VlsaMachine(width, window=6)
    mask = (1 << width) - 1
    chain_a = mask >> 1  # 0111..1
    chain_b = 1
    trace = machine.run([(1, 2), (chain_a, chain_b), (3, 4)])
    assert [r.stalled for r in trace.results] == [False, True, False]
    assert trace.results[1].sum_out == (chain_a + chain_b) & mask
    assert trace.results[1].latency_cycles == 2


def test_speedup_over_traditional():
    machine = VlsaMachine(16, window=16, clock_period=0.5)
    trace = machine.run([(1, 1)] * 10)
    assert trace.speedup_over(1.0) == pytest.approx(2.0)
    assert trace.average_latency_time == pytest.approx(0.5)


def test_trace_renders_diagram_and_vcd(rng):
    machine = VlsaMachine(16, window=3)
    trace = machine.run(_random_pairs(rng, 16, 10))
    diagram = trace.timing_diagram()
    assert "CLK" in diagram and "STALL" in diagram
    vcd = trace.to_vcd()
    assert "$var wire 16" in vcd and "valid" in vcd


def test_empty_trace():
    machine = VlsaMachine(8, window=2)
    trace = machine.run([])
    assert trace.operations == 0
    assert trace.average_latency_cycles == 0.0
    assert trace.timing_diagram() == "(empty trace)"
    with pytest.raises(ValueError):
        trace.speedup_over(1.0)


def test_window_defaults_and_validation():
    from repro.analysis import choose_window

    machine = VlsaMachine(64)
    assert machine.window == choose_window(64)
    with pytest.raises(ValueError):
        VlsaMachine(16, window=4, recovery_cycles=0)
