"""Registers and clock domains."""

import pytest

from repro.arch import ClockDomain, Register


def test_register_latches_on_tick():
    clk = ClockDomain()
    r = clk.register(0, "r")
    r.set_next(5)
    assert r.q == 0  # not yet
    clk.tick()
    assert r.q == 5


def test_register_holds_without_set_next():
    clk = ClockDomain()
    r = clk.register(3)
    clk.tick()
    assert r.q == 3


def test_hold_cancels_pending_update():
    clk = ClockDomain()
    r = clk.register(1)
    r.set_next(9)
    r.hold()
    clk.tick()
    assert r.q == 1


def test_two_phase_semantics_allow_swaps():
    """Register exchange must not depend on evaluation order."""
    clk = ClockDomain()
    a = clk.register(1)
    b = clk.register(2)
    a.set_next(b.q)
    b.set_next(a.q)
    clk.tick()
    assert (a.q, b.q) == (2, 1)


def test_reset():
    clk = ClockDomain()
    r = clk.register(7)
    r.set_next(0)
    clk.tick()
    clk.reset()
    assert r.q == 7
    assert clk.cycle == 0


def test_cycle_count_and_time():
    clk = ClockDomain(period=2.5)
    for _ in range(4):
        clk.tick()
    assert clk.cycle == 4
    assert clk.now == pytest.approx(10.0)


def test_bad_period():
    with pytest.raises(ValueError):
        ClockDomain(period=0)
