"""The tiny accumulator CPU with a variable-latency ALU."""

import pytest

from repro.arch import Instruction, TinyCpu, assemble


def _sum_loop_program():
    # assemble() has no labels; build the loop directly.
    return [
        Instruction("LOADI", 0), Instruction("STORE", 0),
        Instruction("LOADI", 100), Instruction("STORE", 1),
        # loop body @4
        Instruction("LOAD", 0), Instruction("ADD", 1),
        Instruction("STORE", 0),
        Instruction("LOAD", 1), Instruction("ADDI", -1 & 0xFFFFFFFF),
        Instruction("STORE", 1),
        Instruction("JNZ", 4),
        Instruction("LOAD", 0), Instruction("HALT"),
    ]


def test_assemble():
    prog = assemble("LOADI 5\nADDI 0x10\nHALT  # done")
    assert prog == [Instruction("LOADI", 5), Instruction("ADDI", 16),
                    Instruction("HALT")]
    with pytest.raises(ValueError):
        assemble("FLY 1")


def test_straightline_arithmetic():
    prog = assemble("""
        LOADI 40
        ADDI 2
        STORE 7
        HALT
    """)
    for adder in ("vlsa", "exact"):
        result = TinyCpu(adder=adder).run(prog)
        assert result.accumulator == 42
        assert result.memory[7] == 42


def test_sum_loop_result_identical_for_both_adders():
    prog = _sum_loop_program()
    r_vlsa = TinyCpu(adder="vlsa").run(prog)
    r_exact = TinyCpu(adder="exact").run(prog)
    # sum of (100 + 99 + ... + 1) accumulated counter values:
    expected = sum(range(1, 101))
    assert r_vlsa.accumulator == expected
    assert r_exact.accumulator == expected
    assert r_vlsa.instructions_executed == r_exact.instructions_executed


def test_vlsa_cpu_is_faster_on_real_programs():
    prog = _sum_loop_program()
    r_vlsa = TinyCpu(adder="vlsa").run(prog)
    r_exact = TinyCpu(adder="exact").run(prog)
    assert r_vlsa.cycles < r_exact.cycles
    assert r_vlsa.cpi() < r_exact.cpi()


def test_subtraction():
    prog = assemble("""
        LOADI 10
        STORE 3
        LOADI 100
        SUB 3
        HALT
    """)
    result = TinyCpu().run(prog)
    assert result.accumulator == 90


def test_stalls_counted():
    """ADDI -1 on small counters drives long borrow chains -> stalls."""
    prog = _sum_loop_program()
    result = TinyCpu(adder="vlsa", window=6).run(prog)
    assert result.add_stalls > 0
    assert result.cycles > result.instructions_executed


def test_runaway_program_rejected():
    prog = [Instruction("LOADI", 1), Instruction("JNZ", 0)]
    with pytest.raises(RuntimeError):
        TinyCpu().run(prog, max_instructions=100)


def test_bad_adder_kind():
    with pytest.raises(ValueError):
        TinyCpu(adder="quantum")
