"""VCD waveform writer."""

import pytest

from repro.arch import VcdWriter


def test_header_and_declarations():
    vcd = VcdWriter(timescale="1 ns", module="dut")
    clk = vcd.add_signal("clk")
    data = vcd.add_signal("data", 8)
    text = vcd.render()
    assert "$timescale 1 ns $end" in text
    assert "$scope module dut $end" in text
    assert f"$var wire 1 {clk} clk $end" in text
    assert f"$var wire 8 {data} data $end" in text
    assert "$enddefinitions $end" in text


def test_scalar_and_vector_changes():
    vcd = VcdWriter()
    clk = vcd.add_signal("clk")
    bus = vcd.add_signal("bus", 4)
    vcd.change(clk, 0, 1)
    vcd.change(bus, 0, 0b1010)
    vcd.change(clk, 3, 0)
    text = vcd.render()
    assert f"#0\n1{clk}\nb1010 {bus}" in text
    assert f"#3\n0{clk}" in text


def test_changes_sorted_by_time():
    vcd = VcdWriter()
    s = vcd.add_signal("s")
    vcd.change(s, 5, 1)
    vcd.change(s, 1, 0)
    text = vcd.render()
    assert text.index("#1") < text.index("#5")


def test_vector_values_masked_to_width():
    vcd = VcdWriter()
    bus = vcd.add_signal("bus", 4)
    vcd.change(bus, 0, 0xFF)
    assert f"b1111 {bus}" in vcd.render()


def test_many_signals_get_unique_ids():
    vcd = VcdWriter()
    ids = [vcd.add_signal(f"s{i}") for i in range(200)]
    assert len(set(ids)) == 200


def test_zero_width_rejected():
    with pytest.raises(ValueError):
        VcdWriter().add_signal("x", 0)


def test_save(tmp_path):
    vcd = VcdWriter()
    s = vcd.add_signal("s")
    vcd.change(s, 0, 1)
    path = tmp_path / "wave.vcd"
    vcd.save(str(path))
    assert path.read_text().startswith("$timescale")
