"""Exact ACA error DP vs brute force, bounds and window selection."""

from fractions import Fraction

import pytest

from repro.analysis import (
    aca_error_probability,
    choose_window,
    detector_flag_probability,
    expected_latency_cycles,
    average_speedup,
    quantile_longest_run,
)
from repro.mc import aca_is_correct


@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
@pytest.mark.parametrize("w", [1, 2, 3, 4])
def test_dp_matches_brute_force(n, w):
    errors = sum(1 for a in range(1 << n) for b in range(1 << n)
                 if not aca_is_correct(a, b, n, w))
    brute = errors / float(1 << (2 * n))
    assert aca_error_probability(n, w) == pytest.approx(brute, abs=1e-12)


@pytest.mark.parametrize("n,w", [(5, 2), (6, 3)])
def test_exact_fraction_mode(n, w):
    errors = sum(1 for a in range(1 << n) for b in range(1 << n)
                 if not aca_is_correct(a, b, n, w))
    exact = aca_error_probability(n, w, exact=True)
    assert isinstance(exact, Fraction)
    assert exact == Fraction(errors, 1 << (2 * n))


@pytest.mark.parametrize("n,w", [(6, 2), (7, 3), (8, 3)])
def test_cin_aware_dp_matches_brute_force(n, w):
    """cin=1 raises the error rate via the run touching bit 0; the DP
    models it exactly."""
    rates = {}
    for cin in (0, 1):
        errors = sum(1 for a in range(1 << n) for b in range(1 << n)
                     if not aca_is_correct(a, b, n, w, cin))
        rates[cin] = errors / float(1 << (2 * n))
        assert rates[cin] == pytest.approx(
            aca_error_probability(n, w, cin=cin), abs=1e-12)
    assert rates[1] > rates[0]


def test_error_below_detector_probability():
    for n in (32, 64, 128):
        for w in (4, 8, 12):
            assert (aca_error_probability(n, w) <=
                    detector_flag_probability(n, w) + 1e-15)


def test_error_monotone_in_window():
    n = 64
    probs = [aca_error_probability(n, w) for w in range(2, 20)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_zero_error_when_window_covers_width():
    assert aca_error_probability(16, 16) == 0.0
    assert aca_error_probability(16, 20) == 0.0
    assert aca_error_probability(16, 16, exact=True) == 0


def test_validation():
    with pytest.raises(ValueError):
        aca_error_probability(0, 4)
    with pytest.raises(ValueError):
        aca_error_probability(8, 0)


def test_choose_window_hits_target():
    for n in (64, 256, 1024):
        w = choose_window(n, 0.9999)
        assert detector_flag_probability(n, w) <= 1e-4
        assert w == quantile_longest_run(n, 0.9999) + 1
        # One less would violate the target.
        assert detector_flag_probability(n, w - 1) > 1e-4


def test_expected_latency():
    assert expected_latency_cycles(0.0) == 1.0
    assert expected_latency_cycles(1e-4) == pytest.approx(1.0001)
    assert expected_latency_cycles(0.5, recovery_cycles=2) == 2.0
    with pytest.raises(ValueError):
        expected_latency_cycles(1.5)
    with pytest.raises(ValueError):
        expected_latency_cycles(0.1, recovery_cycles=-1)


def test_average_speedup():
    # Traditional 2 ns, VLSA clock 1 ns, negligible errors -> ~2x.
    assert average_speedup(2.0, 1.0, 1e-6) == pytest.approx(2.0, rel=1e-3)
    # Frequent errors erode the speedup.
    assert average_speedup(2.0, 1.0, 0.5) == pytest.approx(2.0 / 1.5)


def test_paper_error_band_at_9999_window():
    """Section 4.3: at the 99.99% window the error stays below 1e-4 and
    the average latency below 1.0002 cycles."""
    for n in (64, 512, 2048):
        w = choose_window(n)
        p = aca_error_probability(n, w)
        assert p < 1e-4
        assert expected_latency_cycles(p) < 1.0002
