"""Theorem 1: three independent computations must agree."""

import numpy as np
import pytest

from repro.analysis import (
    expected_flips_closed_form,
    expected_flips_linear_solve,
    expected_flips_monte_carlo,
    expected_flips_recurrence,
)


@pytest.mark.parametrize("k", range(0, 16))
def test_closed_form_equals_recurrence(k):
    assert expected_flips_closed_form(k) == expected_flips_recurrence(k)


@pytest.mark.parametrize("k", range(0, 12))
def test_closed_form_equals_linear_solve(k):
    assert expected_flips_linear_solve(k) == pytest.approx(
        expected_flips_closed_form(k), rel=1e-9)


def test_known_values():
    assert expected_flips_closed_form(1) == 2
    assert expected_flips_closed_form(2) == 6
    assert expected_flips_closed_form(3) == 14
    assert expected_flips_closed_form(10) == 2046


@pytest.mark.parametrize("k", [1, 2, 4, 6])
def test_monte_carlo_agrees(k):
    rng = np.random.default_rng(42)
    estimate = expected_flips_monte_carlo(k, trials=4000, rng=rng)
    exact = expected_flips_closed_form(k)
    assert estimate == pytest.approx(exact, rel=0.1)


def test_k_zero_needs_no_flips():
    assert expected_flips_closed_form(0) == 0
    assert expected_flips_linear_solve(0) == 0.0
    assert expected_flips_monte_carlo(0, trials=5) == 0.0


def test_negative_k_rejected():
    for fn in (expected_flips_closed_form, expected_flips_recurrence,
               expected_flips_linear_solve):
        with pytest.raises(ValueError):
            fn(-1)
    with pytest.raises(ValueError):
        expected_flips_monte_carlo(-1)


def test_exponential_growth():
    """The paper's point: reaching a k-run costs exponential time, so
    long propagate chains are exponentially rare."""
    values = [expected_flips_closed_form(k) for k in range(1, 12)]
    ratios = [b / a for a, b in zip(values, values[1:])]
    assert all(1.9 < r <= 3.0 for r in ratios)
    assert ratios[-1] == pytest.approx(2.0, abs=0.01)  # -> 2 asymptotically
