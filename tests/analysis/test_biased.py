"""Biased-operand error model vs brute force and the uniform model."""

import itertools

import pytest

from repro.analysis import (
    aca_error_probability,
    aca_error_probability_biased,
    pg_probabilities,
    prob_max_run_at_least,
    run_at_least_probability_biased,
)
from repro.mc import aca_is_correct


def test_pg_probabilities_basics():
    p, g, k = pg_probabilities(0.5, 0.5)
    assert (p, g, k) == (0.5, 0.25, 0.25)
    p, g, k = pg_probabilities(1.0, 1.0)
    assert (p, g, k) == (0.0, 1.0, 0.0)
    p, g, k = pg_probabilities(0.0, 0.0)
    assert (p, g, k) == (0.0, 0.0, 1.0)
    assert sum(pg_probabilities(0.3, 0.8)) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        pg_probabilities(1.2, 0.5)


def test_uniform_case_matches_unbiased_model():
    for n, w in [(16, 4), (32, 6), (64, 10)]:
        biased = aca_error_probability_biased(n, w, (0.5, 0.25, 0.25))
        assert biased == pytest.approx(aca_error_probability(n, w),
                                       abs=1e-12)


def _brute_biased(n, w, alpha, beta, cin=0):
    """Weighted brute force over all operand pairs."""
    total = 0.0
    for a in range(1 << n):
        pa = 1.0
        for i in range(n):
            pa *= alpha if (a >> i) & 1 else (1 - alpha)
        for b in range(1 << n):
            pb = 1.0
            for i in range(n):
                pb *= beta if (b >> i) & 1 else (1 - beta)
            if not aca_is_correct(a, b, n, w, cin):
                total += pa * pb
    return total


@pytest.mark.parametrize("alpha,beta", [(0.5, 0.5), (0.8, 0.3), (0.9, 0.9)])
def test_biased_dp_matches_weighted_brute_force(alpha, beta):
    n, w = 6, 2
    probs = pg_probabilities(alpha, beta)
    expected = _brute_biased(n, w, alpha, beta)
    assert aca_error_probability_biased(n, w, probs) == pytest.approx(
        expected, abs=1e-10)


def test_biased_dp_with_cin_matches_brute_force():
    n, w = 6, 2
    probs = pg_probabilities(0.7, 0.4)
    expected = _brute_biased(n, w, 0.7, 0.4, cin=1)
    got = aca_error_probability_biased(n, w, probs, cin_weight=1.0)
    assert got == pytest.approx(expected, abs=1e-10)


def test_per_bit_triples():
    n, w = 8, 3
    per_bit = [pg_probabilities(0.5, 0.5)] * n
    uniform = aca_error_probability_biased(n, w, per_bit)
    assert uniform == pytest.approx(aca_error_probability(n, w), abs=1e-12)
    with pytest.raises(ValueError):
        aca_error_probability_biased(n, w, per_bit[:-1])


def test_high_propagate_bias_raises_error_rate():
    """Operands that XOR to long runs (e.g. x and ~x patterns) stall
    far more often than uniform traffic — the subtractor's x - x case."""
    n, w = 32, 8
    sleepy = aca_error_probability_biased(n, w, (0.9, 0.05, 0.05))
    uniform = aca_error_probability_biased(n, w, (0.5, 0.25, 0.25))
    assert sleepy > 10 * uniform


def test_biased_run_probability_matches_exact_at_half():
    for n in (16, 64):
        for r in (3, 5, 8):
            biased = run_at_least_probability_biased(n, r, 0.5)
            exact = prob_max_run_at_least(n, r)
            assert biased == pytest.approx(exact, abs=1e-12)


def test_biased_run_probability_edges():
    assert run_at_least_probability_biased(8, 0, 0.5) == 1.0
    assert run_at_least_probability_biased(8, 9, 0.5) == 0.0
    assert run_at_least_probability_biased(8, 3, 1.0) == pytest.approx(1.0)
    assert run_at_least_probability_biased(8, 3, 0.0) == 0.0
    with pytest.raises(ValueError):
        run_at_least_probability_biased(8, 3, 1.5)


def test_distribution_validation():
    with pytest.raises(ValueError):
        aca_error_probability_biased(8, 3, (0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        aca_error_probability_biased(8, 3, cin_weight=2.0)
