"""Analytic depth formulas must match unit-delay STA on the real circuits."""

import pytest

from repro.adders import (
    build_brent_kung_adder,
    build_kogge_stone_adder,
    build_sklansky_adder,
)
from repro.analysis.delay_theory import (
    aca_depth,
    aca_speedup_asymptotic,
    brent_kung_depth,
    detector_depth,
    prefix_adder_depth,
)
from repro.circuit import UNIT, analyze_timing
from repro.core import build_aca, build_error_detector


def _depth(circuit):
    return analyze_timing(circuit, UNIT).critical_delay


@pytest.mark.parametrize("width", [2, 4, 8, 16, 33, 64, 100, 128])
def test_prefix_depth_formula(width):
    assert _depth(build_kogge_stone_adder(width)) == (
        prefix_adder_depth(width))
    assert _depth(build_sklansky_adder(width)) == prefix_adder_depth(width)


@pytest.mark.parametrize("width", [4, 8, 16, 64, 128])
def test_brent_kung_depth_formula(width):
    assert _depth(build_brent_kung_adder(width)) == brent_kung_depth(width)


@pytest.mark.parametrize("width,window", [
    (16, 2), (16, 4), (32, 5), (64, 8), (64, 18), (128, 20), (64, 64),
])
def test_aca_depth_formula(width, window):
    assert _depth(build_aca(width, window)) == aca_depth(width, window)


@pytest.mark.parametrize("width,window", [
    (16, 4), (32, 5), (64, 18), (128, 20),
])
def test_detector_depth_formula(width, window):
    assert _depth(build_error_detector(width, window)) == (
        detector_depth(width, window))


def test_aca_depth_grows_with_log_log_n():
    """The paper's 'exponentially faster': depth tracks log(window) =
    log log n, so doubling n adds ~1 level to the exact adder but only
    rarely to the ACA."""
    from repro.analysis import choose_window

    exact_growth = [prefix_adder_depth(n) for n in (64, 256, 1024, 4096)]
    aca_growth = [aca_depth(n, choose_window(n))
                  for n in (64, 256, 1024, 4096)]
    assert exact_growth == [8, 10, 12, 14]   # +1 level per doubling
    assert aca_growth == [7, 7, 7, 7]        # flat across 64x range


def test_speedup_asymptotic_monotone():
    ratios = [aca_speedup_asymptotic(n) for n in (64, 256, 1024, 4096)]
    assert ratios == sorted(ratios)
    assert ratios[0] > 1.0


def test_validation():
    with pytest.raises(ValueError):
        prefix_adder_depth(0)
    with pytest.raises(ValueError):
        aca_depth(8, 0)
    with pytest.raises(ValueError):
        detector_depth(0, 2)
    assert detector_depth(8, 9) == 0
