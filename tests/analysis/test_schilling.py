"""Schilling/Gordon asymptotics against the exact distribution."""

import math

import pytest

from repro.analysis import (
    SCHILLING_VARIANCE,
    exceedance_decay_ratio,
    expected_longest_run,
    expected_longest_run_asymptotic,
    feller_prob_max_run_below,
    prob_max_run_at_least,
    prob_max_run_at_most,
    union_tail_bound,
    variance_longest_run,
)


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_expected_run_close_to_log2n_minus_two_thirds(n):
    exact = expected_longest_run(n)
    approx = expected_longest_run_asymptotic(n)
    assert abs(exact - approx) < 0.15  # Schilling's o(1) term is tiny


def test_asymptotic_validation():
    with pytest.raises(ValueError):
        expected_longest_run_asymptotic(0)


@pytest.mark.parametrize("n", [256, 1024])
def test_variance_near_schilling_constant(n):
    assert variance_longest_run(n) == pytest.approx(SCHILLING_VARIANCE,
                                                    abs=0.15)


@pytest.mark.parametrize("n", [64, 256])
def test_feller_approximation_tracks_exact(n):
    for x in range(4, 16):
        exact = prob_max_run_at_most(n, x - 1)  # P(L < x)
        approx = feller_prob_max_run_below(n, x)
        assert abs(exact - approx) < 0.05, (n, x)
    assert feller_prob_max_run_below(n, 0) == 0.0


@pytest.mark.parametrize("n", [32, 128, 512])
def test_union_bound_is_an_upper_bound(n):
    for x in range(1, 20):
        assert prob_max_run_at_least(n, x) <= union_tail_bound(n, x) + 1e-12


def test_union_bound_edges():
    assert union_tail_bound(16, 0) == 1.0
    assert union_tail_bound(16, 17) == 0.0
    assert union_tail_bound(16, 16) == pytest.approx(2.0 ** -16)


def test_plus_seven_bits_drop_two_decades():
    """The paper's observation: bound + 7 turns 1% into ~0.01%."""
    n = 1024
    ratio = exceedance_decay_ratio(n, 15, 7)
    assert ratio == pytest.approx(2.0 ** -7, rel=0.15)
    # And on the exact distribution:
    p_before = prob_max_run_at_least(n, 16)
    p_after = prob_max_run_at_least(n, 23)
    assert p_before < 0.01
    assert p_after < p_before / 50


def test_decay_ratio_degenerate():
    assert exceedance_decay_ratio(8, 20, 3) == 0.0
