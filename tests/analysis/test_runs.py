"""Exact longest-run combinatorics vs brute force."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    count_max_run_at_most,
    expected_longest_run,
    longest_run_distribution,
    longest_run_of_ones,
    prob_max_run_at_least,
    prob_max_run_at_most,
    quantile_longest_run,
    table1_rows,
    variance_longest_run,
)


def _brute_longest_run(value, n):
    best = cur = 0
    for i in range(n):
        cur = cur + 1 if (value >> i) & 1 else 0
        best = max(best, cur)
    return best


@given(st.integers(0, 2**20 - 1))
def test_longest_run_of_ones_matches_scan(value):
    assert longest_run_of_ones(value) == _brute_longest_run(value, 20)


def test_longest_run_edge_cases():
    assert longest_run_of_ones(0) == 0
    assert longest_run_of_ones(1) == 1
    assert longest_run_of_ones((1 << 13) - 1) == 13
    with pytest.raises(ValueError):
        longest_run_of_ones(-1)


@pytest.mark.parametrize("n", [1, 2, 5, 8, 12, 16])
def test_count_matches_brute_force(n):
    for x in range(n + 1):
        expected = sum(1 for v in range(1 << n)
                       if _brute_longest_run(v, n) <= x)
        assert count_max_run_at_most(n, x) == expected, (n, x)


def test_count_boundary_cases():
    assert count_max_run_at_most(0, 0) == 1  # the empty string
    assert count_max_run_at_most(5, 5) == 32  # everything allowed
    assert count_max_run_at_most(5, 0) == 1  # only the all-zeros string
    with pytest.raises(ValueError):
        count_max_run_at_most(-1, 2)


def test_count_x_zero_is_fibonacci():
    """Strings with no two adjacent ones are counted by Fibonacci."""
    fib = [1, 2]
    while len(fib) < 20:
        fib.append(fib[-1] + fib[-2])
    for n in range(1, 20):
        assert count_max_run_at_most(n, 1) == fib[n]


def test_probabilities_consistent():
    for n in (8, 16, 64):
        for x in (2, 4, 8):
            p_le = prob_max_run_at_most(n, x)
            p_ge = prob_max_run_at_least(n, x + 1)
            assert p_le + p_ge == pytest.approx(1.0)
    assert prob_max_run_at_least(16, 0) == 1.0


def test_distribution_sums_to_one():
    for n in (4, 16, 64):
        pmf = longest_run_distribution(n)
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-12)
        assert all(p >= 0 for p in pmf.values())


@pytest.mark.parametrize("n", [4, 8, 12])
def test_expectation_matches_brute_force(n):
    brute = sum(_brute_longest_run(v, n) for v in range(1 << n)) / (1 << n)
    assert expected_longest_run(n) == pytest.approx(brute, abs=1e-12)


@pytest.mark.parametrize("n", [4, 8, 12])
def test_variance_matches_brute_force(n):
    vals = [_brute_longest_run(v, n) for v in range(1 << n)]
    mean = sum(vals) / len(vals)
    brute = sum((v - mean) ** 2 for v in vals) / len(vals)
    assert variance_longest_run(n) == pytest.approx(brute, abs=1e-9)


def test_quantiles_are_minimal():
    for n in (16, 64, 256):
        for p in (0.9, 0.99, 0.9999):
            q = quantile_longest_run(n, p)
            assert prob_max_run_at_most(n, q) >= p
            if q > 0:
                assert prob_max_run_at_most(n, q - 1) < p


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile_longest_run(16, 0.0)
    with pytest.raises(ValueError):
        quantile_longest_run(16, 1.0)


def test_table1_shape_and_monotonicity():
    rows = table1_rows([64, 256, 1024], (0.99, 0.9999))
    assert [r[0] for r in rows] == [64, 256, 1024]
    for _, (b99, b9999) in rows:
        assert b9999 > b99  # higher confidence needs a longer bound
    bounds99 = [r[1][0] for r in rows]
    assert bounds99 == sorted(bounds99)  # grows with n


def test_table1_known_values():
    """Anchor a few exact values (cross-checked against the recurrence
    by brute force at small n and the paper's +7 observation)."""
    rows = dict(table1_rows([64, 1024], (0.99, 0.9999)))
    assert rows[64] == (11, 17)
    assert rows[1024] == (15, 22)


def test_quantile_grows_logarithmically():
    q = [quantile_longest_run(n, 0.99) for n in (64, 128, 256, 512, 1024)]
    diffs = [b - a for a, b in zip(q, q[1:])]
    assert all(d in (0, 1, 2) for d in diffs)  # ~+1 per doubling
