"""CLI entry point."""

import os

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _results_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def test_table1_command(capsys, _results_tmpdir):
    assert main(["table1", "--widths", "16,32"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (_results_tmpdir / "table1.txt").exists()


def test_theorem1_command(capsys):
    assert main(["theorem1", "--max-k", "4", "--no-save"]) == 0
    assert "closed form" in capsys.readouterr().out


def test_fig7_command(capsys):
    assert main(["fig7", "--width", "32", "--ops", "500", "--no-save"]) == 0
    assert "Timing diagram" in capsys.readouterr().out


def test_errors_command(capsys):
    assert main(["errors", "--widths", "32", "--samples", "500",
                 "--no-save"]) == 0
    assert "error rates" in capsys.readouterr().out


def test_sharing_command(capsys):
    assert main(["sharing", "--widths", "32", "--no-save"]) == 0
    assert "shared" in capsys.readouterr().out


def test_attack_command(capsys):
    assert main(["attack", "--corpus", "512", "--key-bits", "4",
                 "--no-save"]) == 0
    assert "attack" in capsys.readouterr().out.lower()


def test_no_save_writes_nothing(capsys, _results_tmpdir):
    assert main(["theorem1", "--max-k", "3", "--no-save"]) == 0
    assert list(_results_tmpdir.iterdir()) == []


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_futurework_command(capsys):
    # Uses the full default sizes; just check it runs and renders.
    assert main(["faults", "--width", "8", "--no-save"]) == 0
    assert "coverage" in capsys.readouterr().out


def test_cpu_command(capsys):
    assert main(["cpu", "--width", "32", "--no-save"]) == 0
    assert "CPI" in capsys.readouterr().out


def test_dsp_command(capsys):
    assert main(["dsp", "--no-save"]) == 0
    assert "stall" in capsys.readouterr().out
