"""CLI entry point."""

import json

import pytest

from repro import __version__
from repro.cli import main


@pytest.fixture(autouse=True)
def _results_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def test_table1_command(capsys, _results_tmpdir):
    assert main(["table1", "--widths", "16,32"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (_results_tmpdir / "table1.txt").exists()


def test_theorem1_command(capsys):
    assert main(["theorem1", "--max-k", "4", "--no-save"]) == 0
    assert "closed form" in capsys.readouterr().out


def test_fig7_command(capsys):
    assert main(["fig7", "--width", "32", "--ops", "500", "--no-save"]) == 0
    assert "Timing diagram" in capsys.readouterr().out


def test_errors_command(capsys):
    assert main(["errors", "--widths", "32", "--samples", "500",
                 "--no-save"]) == 0
    assert "error rates" in capsys.readouterr().out


def test_sharing_command(capsys):
    assert main(["sharing", "--widths", "32", "--no-save"]) == 0
    assert "shared" in capsys.readouterr().out


def test_attack_command(capsys):
    assert main(["attack", "--corpus", "512", "--key-bits", "4",
                 "--no-save"]) == 0
    assert "attack" in capsys.readouterr().out.lower()


def test_no_save_writes_nothing(capsys, _results_tmpdir):
    assert main(["theorem1", "--max-k", "3", "--no-save"]) == 0
    assert list(_results_tmpdir.iterdir()) == []


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_futurework_command(capsys):
    # Uses the full default sizes; just check it runs and renders.
    assert main(["faults", "--width", "8", "--no-save"]) == 0
    assert "coverage" in capsys.readouterr().out


def test_cpu_command(capsys):
    assert main(["cpu", "--width", "32", "--no-save"]) == 0
    assert "CPI" in capsys.readouterr().out


def test_dsp_command(capsys):
    assert main(["dsp", "--no-save"]) == 0
    assert "stall" in capsys.readouterr().out


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_manifest_written_by_default(_results_tmpdir):
    assert main(["theorem1", "--max-k", "3"]) == 0
    manifest = json.loads(
        (_results_tmpdir / "theorem1_manifest.json").read_text())
    assert manifest["label"] == "theorem1"
    assert manifest["backend"] == "bigint"
    assert "theorem1" in manifest["phase_seconds"]
    assert (_results_tmpdir / "theorem1.txt").exists()


def test_manifest_flag_overrides_no_save(_results_tmpdir):
    assert main(["theorem1", "--max-k", "3", "--manifest",
                 "--no-save"]) == 0
    names = [p.name for p in _results_tmpdir.iterdir()]
    assert names == ["theorem1_manifest.json"]


def test_loadgen_command(capsys, _results_tmpdir):
    assert main(["loadgen", "--ops", "2000", "--chunk", "256"]) == 0
    out = capsys.readouterr().out
    assert "adds/second" in out
    metrics = json.loads(
        (_results_tmpdir / "loadgen_metrics.json").read_text())
    assert metrics["ops"] == 2000
    assert metrics["workload"] == "uniform"
    assert (_results_tmpdir / "loadgen_manifest.json").exists()


def test_loadgen_workload_choices_enforced():
    with pytest.raises(SystemExit):
        main(["loadgen", "--workload", "nope", "--no-save"])


def test_commands_reject_irrelevant_flags():
    # Flags are attached per command; --ops belongs to fig7/loadgen only.
    with pytest.raises(SystemExit):
        main(["table1", "--ops", "5"])
    with pytest.raises(SystemExit):
        main(["theorem1", "--width", "8"])
    with pytest.raises(SystemExit):
        main(["dsp", "--samples", "10"])


def test_per_command_help_mentions_its_flags(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["loadgen", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--workload" in out
    assert "--queue-capacity" in out


def test_serve_command_bounded_duration(capsys):
    assert main(["serve", "--port", "0", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "vlsa_ops_total 0" in out  # prometheus dump on exit
