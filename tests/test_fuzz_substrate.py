"""Property-based fuzzing of the circuit substrate.

Generates random combinational DAGs with hypothesis and checks that every
transformation in the toolchain preserves semantics: optimisation sweeps,
rebuilds, buffer insertion, JSON round-trips, and the BDD translation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    Circuit,
    check_structure,
    insert_buffers,
    rebuild,
    simulate_bus_ints,
    sweep_dead_logic,
)
from repro.circuit import serialize
from repro.circuit.bdd import Bdd, build_output_bdds, interleaved_order

_BINOPS = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR"]
_TRIOPS = ["AO21", "OA21", "MUX2", "MAJ3"]


@st.composite
def random_circuits(draw):
    """A random DAG circuit with 3-6 inputs and up to 25 gates."""
    num_inputs = draw(st.integers(3, 6))
    c = Circuit("fuzz")
    nets = list(c.add_input_bus("x", num_inputs))
    num_gates = draw(st.integers(1, 25))
    for _ in range(num_gates):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            op = draw(st.sampled_from(_BINOPS))
            a = draw(st.sampled_from(nets))
            b = draw(st.sampled_from(nets))
            nets.append(c.add_gate(op, a, b))
        elif kind == 1:
            op = draw(st.sampled_from(_TRIOPS))
            args = [draw(st.sampled_from(nets)) for _ in range(3)]
            nets.append(c.add_gate(op, *args))
        elif kind == 2:
            nets.append(c.add_gate("NOT", draw(st.sampled_from(nets))))
        else:
            const = c.const(draw(st.integers(0, 1)))
            a = draw(st.sampled_from(nets))
            nets.append(c.add_gate("AND", a, const))
    num_outputs = draw(st.integers(1, 4))
    for i in range(num_outputs):
        c.set_output(f"y{i}", draw(st.sampled_from(nets)))
    return c


def _truth_table(circuit):
    width = circuit.input_width("x")
    return [simulate_bus_ints(circuit, {"x": v})
            for v in range(1 << width)]


@given(random_circuits())
@settings(max_examples=40)
def test_structure_always_valid(circuit):
    check_structure(circuit)


@given(random_circuits())
@settings(max_examples=30)
def test_sweep_preserves_semantics(circuit):
    swept, stats = sweep_dead_logic(circuit)
    check_structure(swept)
    assert stats.gates_after <= stats.gates_before
    assert _truth_table(swept) == _truth_table(circuit)


@given(random_circuits())
@settings(max_examples=30)
def test_rebuild_preserves_semantics(circuit):
    opt, stats = rebuild(circuit)
    check_structure(opt)
    assert stats.gates_after <= stats.gates_before
    assert _truth_table(opt) == _truth_table(circuit)


@given(random_circuits(), st.integers(2, 4))
@settings(max_examples=25)
def test_buffering_preserves_semantics(circuit, max_fanout):
    buffered, _ = insert_buffers(circuit, max_fanout=max_fanout)
    check_structure(buffered)
    assert buffered.max_fanout() <= max_fanout
    assert _truth_table(buffered) == _truth_table(circuit)


@given(random_circuits())
@settings(max_examples=30)
def test_json_round_trip_preserves_semantics(circuit):
    back = serialize.loads(serialize.dumps(circuit))
    check_structure(back)
    assert _truth_table(back) == _truth_table(circuit)


@given(random_circuits())
@settings(max_examples=25)
def test_bdd_translation_matches_simulation(circuit):
    order = interleaved_order(circuit)
    manager = Bdd(len(order))
    bdds = build_output_bdds(circuit, manager, order)
    width = circuit.input_width("x")
    level_of = {c_nid: lvl for c_nid, lvl in order.items()}
    bus = circuit.inputs["x"]
    for value in range(1 << width):
        assignment = [0] * len(order)
        for bit, nid in enumerate(bus):
            assignment[level_of[nid]] = (value >> bit) & 1
        expected = simulate_bus_ints(circuit, {"x": value})
        for name, nodes in bdds.items():
            got = manager.evaluate(nodes[0], assignment)
            assert got == (expected[name] & 1), (value, name)


@given(random_circuits())
@settings(max_examples=20)
def test_exports_never_crash(circuit):
    from repro.circuit import to_dot, to_verilog, to_vhdl
    from repro.circuit.export_tb import to_verilog_testbench

    assert "entity" in to_vhdl(circuit)
    assert "module" in to_verilog(circuit)
    assert "digraph" in to_dot(circuit)
    assert "module tb;" in to_verilog_testbench(circuit, num_vectors=2)


@given(random_circuits())
@settings(max_examples=20)
def test_timing_and_area_are_finite_and_positive(circuit):
    from repro.circuit import UMC180, analyze_area, analyze_timing

    delay = analyze_timing(circuit, UMC180).critical_delay
    area = analyze_area(circuit, UMC180).total
    assert delay >= 0.0
    assert area >= 0.0
