"""Experiment F6-RTL — the registered VLSA netlist: clock period versus
the combinational paths, and protocol-level throughput."""

import random

import pytest

from repro import experiments as ex
from repro.circuit import (
    SequentialSimulator,
    UMC180,
    min_clock_period,
    sequential_timing,
)
from repro.circuit.simulate import int_to_bus
from repro.core import build_vlsa_rtl
from repro.reporting import Table


def test_rtl_build_kernel(benchmark):
    benchmark(build_vlsa_rtl, 64, 18)


def test_rtl_simulation_kernel(benchmark):
    circuit = build_vlsa_rtl(32, 8)
    sim = SequentialSimulator(circuit)
    rng = random.Random(0)
    stims = [{"a": int_to_bus(rng.getrandbits(32), 32),
              "b": int_to_bus(rng.getrandbits(32), 32)}
             for _ in range(50)]

    def run():
        sim.reset()
        for stim in stims:
            sim.step(stim)
        return sim.cycle

    cycles = benchmark(run)
    assert cycles == 50


def test_rtl_clock_table(report, benchmark):
    def sweep():
        rows = []
        for width in (32, 64, 128):
            circuit = build_vlsa_rtl(width)
            timing = sequential_timing(circuit, UMC180)
            rows.append((width, circuit.attrs["window"],
                         timing.min_clock_period, timing.worst_path_kind,
                         circuit.gate_count(), len(circuit.dffs())))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table("Registered VLSA netlist (Fig. 6 with flip-flops)",
                  ["bitwidth", "window", "min clock [ns]", "worst path",
                   "gates", "flip-flops"])
    for row in rows:
        table.add_row(*row)
    report("vlsa_rtl.txt", table.render())
    for width, window, period, kind, gates, dffs in rows:
        assert dffs == 2 * width + 1  # operand registers + controller
        assert period > 0
    periods = [r[2] for r in rows]
    assert periods == sorted(periods)  # grows (slowly) with width
