"""Cluster scaling — back-compat shim over the ``cluster`` bench suite.

The measurement moved to :mod:`repro.bench.suites.cluster`; this
pytest entry point keeps ``pytest benchmarks/`` regenerating
``results/BENCH_cluster.json`` (shared schema) and enforcing the
CPU-conditional acceptance bar that predates the registry:

* with >= 4 usable CPUs the widest pool must reach >= 2x the
  single-process baseline;
* on smaller hosts (CI containers are often pinned to one core) the
  pool must stay within the wire-overhead sanity floor instead, and
  the honest curve is still recorded;
* every benchmarked run must be healthy — zero restarts, failures,
  degraded/rejected/timed-out requests (the suite's zero band).

``REPRO_BENCH_CLUSTER_OPS`` / ``REPRO_BENCH_CLUSTER_WORKERS``
override the sweep, as before.
"""

import os

from repro.bench import (RunnerConfig, build_payload, load_builtin_suites,
                         registry, run_benchmark, validate_payload,
                         write_suite_result)

MULTICORE_SPEEDUP = 2.0    # the PR-4 bar, needs >= 4 real cores
#: On a 1-core host at the small preset the pool pays worker spawn +
#: IPC against a tiny op volume, so only a loose sanity floor holds.
SINGLE_CORE_FLOOR = 0.005


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_cluster_throughput_scaling(show):
    load_builtin_suites()
    config = RunnerConfig()
    results = [run_benchmark(b, config)
               for b in registry.build("cluster", "small")]
    payload = build_payload("cluster", "small", results, config)
    validate_payload(payload)
    path = write_suite_result(payload)

    cpus = _usable_cpus()
    by_name = {r.name: r for r in results}
    base_rate = by_name["service_baseline"].ops_per_second
    pools = [r for r in results if r.name.startswith("cluster_w")]
    widest = max(pools, key=lambda r: r.params["workers"])
    speedup = widest.ops_per_second / base_rate

    lines = [f"cluster scaling (unified harness, {cpus} usable CPUs)",
             f"{'benchmark':<20} {'Madds/s':>8} {'speedup':>8}"]
    for r in results:
        lines.append(f"{r.name:<20} {r.ops_per_second / 1e6:>8.2f} "
                     f"{r.ops_per_second / base_rate:>8.2f}")
    if cpus < 4:
        lines.append("note: <4 CPUs — the 2x multi-core bar needs real "
                     "cores and was recorded, not enforced")
    lines.append(f"[json: {path}]")
    show("\n".join(lines))

    for r in results:
        assert not r.band_violations, (r.name, r.band_violations)
        assert r.metrics.get("failures_total", 0) == 0, r.name
    if cpus >= 4:
        assert speedup >= MULTICORE_SPEEDUP, (
            f"{widest.params['workers']}-worker pool reached only "
            f"{speedup:.2f}x on {cpus} CPUs")
    else:
        # One shared core: workers serialize and IPC is pure overhead,
        # so only a wire-efficiency floor is meaningful here.
        assert speedup >= SINGLE_CORE_FLOOR
