"""Cluster scaling bench: 1/2/4-worker pools vs the in-process service.

Drives the same uniform workload through the single-process
:class:`repro.service.VlsaService` baseline and through
:class:`repro.cluster.ClusterRouter` pools of 1, 2 and 4 workers, and
writes ``results/BENCH_cluster.json`` with the scaling curve (adds/s,
speedup over the baseline, per-pool health counters).

Acceptance: with >= 4 usable CPUs the 4-worker pool must reach >= 2x
the single-process throughput.  Worker processes can only run in
parallel on real cores, so on smaller hosts (CI containers are often
pinned to one core) the bench still records the honest curve — plus
``cpus`` so readers can tell the two cases apart — and enforces a
sanity floor instead: the pool must stay within 5x of the baseline
and every run must finish with zero failures/restarts/degraded
requests.

Override the volume via ``REPRO_BENCH_CLUSTER_OPS`` (default
``1 << 18``) and the pool sizes via ``REPRO_BENCH_CLUSTER_WORKERS``
(comma-separated, default ``1,2,4``).
"""

import os

from repro.engine import RunContext
from repro.reporting import save_json
from repro.service import run_loadgen

DEFAULT_OPS = 1 << 18
MULTICORE_SPEEDUP = 2.0   # the ISSUE's bar, needs >= 4 real cores
SINGLE_CORE_FLOOR = 0.2   # wire overhead sanity bound on 1-core hosts


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _row(report, target, workers, baseline_rate):
    params = report.params
    return {
        "target": target,
        "workers": workers,
        "ops": report.ops,
        "wall_seconds": round(report.wall_seconds, 4),
        "adds_per_second": round(report.adds_per_second, 1),
        "speedup_vs_single_process": round(
            report.adds_per_second / baseline_rate, 3),
        "mean_latency_cycles": report.mean_latency_cycles,
        "stall_rate": report.stall_rate,
        "rejected": report.rejected,
        "timeouts": report.timeouts,
        "worker_restarts": params.get("worker_restarts", 0),
        "worker_failures": params.get("worker_failures", 0),
        "degraded_requests": params.get("degraded_requests", 0),
        "redirected_requests": params.get("redirected_requests", 0),
        "failed_requests": params.get("failed_requests", 0),
    }


def test_cluster_throughput_scaling(report):
    ops = int(os.environ.get("REPRO_BENCH_CLUSTER_OPS", DEFAULT_OPS))
    pools = [int(w) for w in os.environ.get(
        "REPRO_BENCH_CLUSTER_WORKERS", "1,2,4").split(",")]
    cpus = _usable_cpus()
    common = dict(ops=ops, width=64, chunk=2048, concurrency=4,
                  max_batch_ops=1 << 14)

    base = run_loadgen("uniform", target="service",
                       ctx=RunContext(seed=1), **common)
    assert base.ops == ops and base.rejected == 0

    rows = [_row(base, "service", 0, base.adds_per_second)]
    for workers in pools:
        rep = run_loadgen("uniform", target="cluster", workers=workers,
                          ctx=RunContext(seed=1), **common)
        assert rep.ops == ops
        row = _row(rep, "cluster", workers, base.adds_per_second)
        # Health: a clean bench run never touches the failure paths.
        for key in ("worker_restarts", "worker_failures",
                    "degraded_requests", "failed_requests", "rejected",
                    "timeouts"):
            assert row[key] == 0, (key, row)
        rows.append(row)

    widest = rows[-1]
    if cpus >= 4:
        assert widest["speedup_vs_single_process"] >= MULTICORE_SPEEDUP, (
            f"{widest['workers']}-worker pool reached only "
            f"{widest['speedup_vs_single_process']}x on {cpus} CPUs")
    else:
        # One shared core: workers serialize and IPC is pure overhead,
        # so only a wire-efficiency floor is meaningful here.
        assert widest["speedup_vs_single_process"] >= SINGLE_CORE_FLOOR

    payload = {
        "acceptance": {
            "ops": ops,
            "cpus": cpus,
            "multicore_speedup_required": MULTICORE_SPEEDUP,
            "multicore_bar_enforced": cpus >= 4,
            "widest_pool_workers": widest["workers"],
            "widest_pool_speedup": widest["speedup_vs_single_process"],
        },
        "scaling": rows,
    }
    path = save_json("BENCH_cluster.json", payload)

    header = (f"{'target':<10} {'workers':>7} {'Madds/s':>8} "
              f"{'speedup':>8} {'restarts':>8} {'degraded':>8}")
    lines = [f"cluster scaling (uniform, {ops} ops, {cpus} usable CPUs)",
             header]
    for row in rows:
        lines.append(
            f"{row['target']:<10} {row['workers']:>7} "
            f"{row['adds_per_second'] / 1e6:>8.2f} "
            f"{row['speedup_vs_single_process']:>8.2f} "
            f"{row['worker_restarts']:>8} {row['degraded_requests']:>8}")
    if cpus < 4:
        lines.append("note: <4 CPUs — the 2x multi-core acceptance bar "
                     "needs real cores and was recorded, not enforced")
    lines.append(f"[json: {path}]")
    report("BENCH_cluster.txt", "\n".join(lines))
