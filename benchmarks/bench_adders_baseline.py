"""Supporting bench (paper Section 2 "state of the art"): delay/area of
every baseline architecture at 256 bits, and the DesignWare-proxy pick."""

import pytest

from repro.adders import ADDER_BUILDERS, build_adder, evaluate_candidates
from repro.circuit import UMC180, analyze_area, analyze_timing
from repro.reporting import Table

_BENCH_NAMES = ["ripple", "cla", "carry_select", "sklansky", "kogge_stone",
                "brent_kung", "han_carlson"]


@pytest.mark.parametrize("name", _BENCH_NAMES)
def test_build_adder_kernel(benchmark, name):
    benchmark(build_adder, name, 256)


def test_baseline_comparison(report, benchmark):
    table = Table("Baseline adders at 256 bits (umc180)",
                  ["architecture", "delay [ns]", "area", "gates", "depth"])
    def characterise():
        out = []
        for name in sorted(ADDER_BUILDERS):
            c = build_adder(name, 256)
            delay = analyze_timing(c, UMC180).critical_delay
            area = analyze_area(c, UMC180).total
            out.append((name, delay, area, c.gate_count(), c.logic_depth()))
        return out

    rows = benchmark.pedantic(characterise, rounds=1, iterations=1)
    for name, delay, area, gates, depth in sorted(rows, key=lambda r: r[1]):
        table.add_row(name, round(delay, 3), round(area, 0), gates, depth)
    report("baseline_adders.txt", table.render())

    by_name = {r[0]: r for r in rows}
    # Classical facts: ripple is the smallest and the slowest of the
    # non-skip architectures (the skip adders' bypass is a false path
    # that purely-topological STA cannot credit, so they report even
    # slower); prefix adders are the fastest.
    non_skip = [r for r in rows if "skip" not in r[0]]
    assert by_name["ripple"][1] == max(r[1] for r in non_skip)
    assert by_name["ripple"][2] == min(r[2] for r in rows)
    assert by_name["kogge_stone"][4] <= by_name["brent_kung"][4]
    assert min(r[1] for r in rows) < by_name["ripple"][1] / 10


def test_designware_proxy_selection(report, benchmark):
    results = benchmark.pedantic(evaluate_candidates, args=(512, UMC180),
                                 rounds=1, iterations=1)
    table = Table("DesignWare-proxy candidate ranking at 512 bits",
                  ["rank", "architecture", "delay [ns]", "area"])
    for i, r in enumerate(results, 1):
        table.add_row(i, r.name, round(r.delay, 3), round(r.area, 0))
    report("designware_ranking.txt", table.render())
    assert results[0].delay <= results[-1].delay
