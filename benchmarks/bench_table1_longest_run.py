"""Experiment T1 — paper Table 1: longest-run bounds per bitwidth.

Regenerates the table with the exact big-integer recurrence and
benchmarks the dominant kernel (the 99.99 % quantile at 4096 bits).
"""

from repro import experiments as ex
from repro.analysis import quantile_longest_run
from repro.analysis.runs import _counts_up_to


def test_table1(benchmark, report):
    def kernel():
        # Fresh computation each round: bypass the lru_cache.
        _counts_up_to.cache_clear()
        return quantile_longest_run(4096, 0.9999)

    bound = benchmark(kernel)
    assert bound == 24
    table = ex.table1()
    report("table1.txt", table.render())
    # Shape assertions from the paper.
    bounds = {int(r[0]): (int(r[1]), int(r[2])) for r in table.rows}
    assert bounds[1024][1] <= 24  # "under ~24 bits in 99.99% of cases"
    for n, (b99, b9999) in bounds.items():
        assert 5 <= b9999 - b99 <= 8  # the "+7 bits" observation
