"""Experiment family sweep — every speculative component side by side:
adder, subtractor, incrementer, array multiplier, Booth multiplier
(the full "new paradigm" of the paper's title and Section 6)."""

import pytest

from repro.analysis import choose_window
from repro.circuit import UMC180, analyze_area, analyze_timing
from repro.core import (
    build_aca,
    build_booth_multiplier,
    build_multiplier,
    build_speculative_incrementer,
    build_speculative_subtractor,
)
from repro.core.incrementer import incrementer_error_probability
from repro.analysis import aca_error_probability
from repro.reporting import Table


def test_incrementer_kernel(benchmark):
    benchmark(build_speculative_incrementer, 64, 8)


def test_booth_kernel(benchmark):
    benchmark(build_booth_multiplier, 16, 9)


def test_family_table(report, benchmark):
    width = 64
    w = choose_window(width)

    def build_all():
        rows = []
        designs = [
            ("ACA adder", build_aca(width, w),
             aca_error_probability(width, w)),
            ("subtractor", build_speculative_subtractor(width, w), None),
            ("incrementer", build_speculative_incrementer(width, w),
             incrementer_error_probability(width, w)),
            ("array multiplier 32x32",
             build_multiplier(32, choose_window(64)), None),
            ("Booth multiplier 32x32",
             build_booth_multiplier(32, choose_window(64)), None),
        ]
        for name, circuit, p_err in designs:
            timing = analyze_timing(circuit, UMC180)
            area = analyze_area(circuit, UMC180)
            rows.append((name, timing.critical_delay, area.total,
                         circuit.gate_count(), p_err))
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    table = Table(
        f"The speculative family at the 99.99% window (width {width})",
        ["design", "delay [ns]", "area", "gates", "P(error)"])
    for name, delay, area, gates, p_err in rows:
        table.add_row(name, round(delay, 3), round(area, 0), gates,
                      f"{p_err:.1e}" if p_err is not None else "-")
    report("speculative_family.txt", table.render())

    by_name = {r[0]: r for r in rows}
    # The incrementer is the cheapest family member by far.
    assert by_name["incrementer"][2] < by_name["ACA adder"][2] / 2
    # The incrementer is also the fastest (AND strips, no carry cells).
    assert by_name["incrementer"][1] < by_name["ACA adder"][1]
    # Multipliers dominate cost, as expected.
    assert by_name["array multiplier 32x32"][2] > 5 * by_name["ACA adder"][2]


def test_atpg_on_speculative_adder(report, benchmark):
    """Production angle: a complete stuck-at test set for a small ACA."""
    from repro.circuit import generate_tests

    circuit = build_aca(8, 3)
    result = benchmark.pedantic(generate_tests, args=(circuit,),
                                kwargs={"random_vectors": 32, "seed": 0},
                                rounds=1, iterations=1)
    table = Table("ATPG on the 8-bit ACA (window 3)",
                  ["metric", "value"])
    table.add_row("faults", result.total_faults)
    table.add_row("detected", result.detected)
    table.add_row("proven untestable", len(result.untestable))
    table.add_row("test vectors", len(result.vectors))
    table.add_row("coverage of testable", round(result.coverage, 4))
    report("atpg_aca.txt", table.render())
    assert result.coverage == pytest.approx(1.0)