"""Experiment DSP — soft-DSP FIR workload: workload-dependent stall
rates (extension finding; cf. paper reference [5], Hegde & Shanbhag)."""

from repro import experiments as ex
from repro.apps import (
    fir_filter,
    moving_average_taps,
    quantize,
    synth_signal,
    vlsa_fir_filter,
)

_SIGNAL = quantize(synth_signal(256, seed=1))
_TAPS = quantize(moving_average_taps(8))


def test_exact_fir_kernel(benchmark):
    out = benchmark(fir_filter, _SIGNAL, _TAPS)
    assert len(out) == len(_SIGNAL)


def test_vlsa_fir_kernel(benchmark):
    out, stats = benchmark(vlsa_fir_filter, _SIGNAL, _TAPS, 18)
    assert out == fir_filter(_SIGNAL, _TAPS)
    assert stats.stalls > 0


def test_dsp_table(report, benchmark):
    table = benchmark.pedantic(ex.dsp_table, kwargs={"samples": 400},
                               rounds=1, iterations=1)
    report("dsp_workload.txt", table.render())
    for row in table.rows:
        uniform = float(row[1])
        measured = float(row[2])
        assert row[4] == "yes"              # VLSA output always exact
        # The workload-dependence finding: measured stalls far exceed
        # the uniform-operand prediction at every window.
        assert measured > uniform
    # Wider windows reduce measured stalls.
    rates = [float(r[2]) for r in table.rows]
    assert rates == sorted(rates, reverse=True)
