"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The
``report`` fixture prints the regenerated artefact with output capture
disabled (so it is visible under plain ``pytest benchmarks/
--benchmark-only``) and also writes it under ``results/``.

Seeding and environment-override helpers are shared with the test suite
via :mod:`repro.testing`; ``env_widths`` is re-exported here because the
benchmark modules import it from ``conftest``.
"""

import pytest

from repro.reporting import save_artifact
from repro.testing import env_widths, make_rng  # noqa: F401  (re-exported)


@pytest.fixture
def report(capsys):
    """Callable ``report(name, text)``: show and persist an artefact."""

    def _report(name: str, text: str) -> None:
        path = save_artifact(name, text)
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[saved to {path}]\n")

    return _report


@pytest.fixture
def show(capsys):
    """Callable ``show(text)``: print with capture disabled, no file.

    The unified-harness shims use this instead of ``report``: their
    persistent artefact is the shared-schema ``BENCH_<suite>.json``,
    so a second ad-hoc text file would just reintroduce schema drift.
    """

    def _show(text: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n")

    return _show


@pytest.fixture
def rng():
    """Deterministic random generator per benchmark."""
    return make_rng()
