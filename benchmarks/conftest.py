"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The
``report`` fixture prints the regenerated artefact with output capture
disabled (so it is visible under plain ``pytest benchmarks/
--benchmark-only``) and also writes it under ``results/``.
"""

import os

import pytest

from repro.reporting import save_artifact


@pytest.fixture
def report(capsys):
    """Callable ``report(name, text)``: show and persist an artefact."""

    def _report(name: str, text: str) -> None:
        path = save_artifact(name, text)
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[saved to {path}]\n")

    return _report


def env_widths(var: str, default):
    """Bitwidth list override via environment (e.g. quick CI runs)."""
    spec = os.environ.get(var)
    if not spec:
        return tuple(default)
    return tuple(int(tok) for tok in spec.split(",") if tok)
