"""Experiment APP — Section 1's ciphertext-only attack, with exact vs
speculative decryption arithmetic."""

import pytest

from repro import experiments as ex
from repro.apps import ArxCipher, aca_adder, exact_adder, sample_corpus

_PLAIN = sample_corpus(2048, seed=5)
_CIPHER = ArxCipher(0x2B)
_CT = _CIPHER.encrypt_bytes(_PLAIN)


def test_decrypt_exact_kernel(benchmark):
    plain = benchmark(_CIPHER.decrypt_bytes, _CT, exact_adder)
    assert plain == _PLAIN


def test_decrypt_aca_kernel(benchmark):
    approx = aca_adder(12)
    plain = benchmark(_CIPHER.decrypt_bytes, _CT, approx)
    # Most blocks still decrypt correctly.
    same = sum(plain[i:i + 8] == _PLAIN[i:i + 8]
               for i in range(0, len(_PLAIN), 8))
    assert same > (len(_PLAIN) // 8) * 0.8


def test_attack_outcome(report, benchmark):
    table = benchmark.pedantic(
        ex.crypto_attack_experiment,
        kwargs={"corpus_bytes": 4096, "key_bits": 8, "window": 8,
                "seed": 7}, rounds=1, iterations=1)
    report("crypto_attack.txt", table.render())
    assert table.rows[0][1] == "1"  # exact recovers the key
    assert table.rows[1][1] == "1"  # ACA recovers it too
    assert int(table.rows[1][2]) > 0  # despite wrong blocks
    assert float(table.rows[1][-1]) > 1.5  # at ~2x arithmetic speed
