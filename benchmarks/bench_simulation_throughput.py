"""Substrate bench: gate-level bit-parallel simulation versus the fast
functional model (sanity check that the Monte Carlo experiments use the
right tool for volume)."""

import numpy as np

from repro.circuit import random_stimulus, simulate_words
from repro.core import build_aca
from repro.mc import AcaModel


def test_gate_level_simulation_kernel(benchmark):
    circuit = build_aca(64, 18)
    stim = random_stimulus(circuit, num_vectors=512,
                           rng=np.random.default_rng(0))
    out = benchmark(simulate_words, circuit, stim, 512)
    assert len(out["sum"]) == 64


def test_functional_model_kernel(benchmark):
    model = AcaModel(64, 18)
    rng = np.random.default_rng(0)
    pairs = [(int(rng.integers(0, 2**63)), int(rng.integers(0, 2**63)))
             for _ in range(512)]

    def run():
        return [model.add(a, b) for a, b in pairs]

    results = benchmark(run)
    assert len(results) == 512
