"""Experiment FW — Section 6 future work: speculative multiplier and
multi-operand adder, plus the Section 4.2 processor context."""

from repro import experiments as ex
from repro.core import build_multi_operand_adder, build_multiplier


def test_multiplier_construction_kernel(benchmark):
    benchmark(build_multiplier, 32, 18)


def test_multiop_construction_kernel(benchmark):
    benchmark(build_multi_operand_adder, 128, 4, 20)


def test_future_work_table(report, benchmark):
    table = benchmark.pedantic(ex.future_work_table,
                               kwargs={"samples": 300},
                               rounds=1, iterations=1)
    report("future_work.txt", table.render())
    # Speculative variants must be faster than their exact counterparts
    # (rows alternate exact/speculative).
    assert float(table.rows[1][2]) > 1.0   # multiplier speedup
    assert float(table.rows[3][2]) > 1.0   # multi-op speedup
    # Measured error rate stays guarded by the flag rate.
    err = float(table.rows[1][4].split()[0])
    flag = float(table.rows[1][5].split()[0])
    assert 0 < err <= flag


def test_processor_table(report, benchmark):
    table = benchmark.pedantic(ex.processor_table,
                               kwargs={"iterations": 300},
                               rounds=1, iterations=1)
    report("processor.txt", table.render())
    exact_row, vlsa_row = table.rows
    assert exact_row[1] == vlsa_row[1]          # same result
    assert int(vlsa_row[3]) < int(exact_row[3])  # fewer cycles
