"""Experiment F6/F7 — the VLSA machine: timing diagram and the
~1.0002-cycle average latency claim."""

import random

from repro import experiments as ex
from repro.arch import VlsaMachine


def test_fig7_machine_throughput(benchmark):
    machine = VlsaMachine(64)
    rng = random.Random(0)
    pairs = [(rng.getrandbits(64), rng.getrandbits(64))
             for _ in range(2000)]
    trace = benchmark(machine.run, pairs)
    assert trace.operations == 2000


def test_fig7_average_latency(report, benchmark):
    table, diagram = benchmark.pedantic(
        ex.fig7_trace, kwargs={"width": 64, "operations": 200000,
                               "seed": 0}, rounds=1, iterations=1)
    report("fig7_vlsa.txt",
           table.render() + "\n\nTiming diagram (first ops):\n" + diagram)
    metrics = {row[0]: row[1] for row in table.rows}
    avg = float(metrics["avg latency [cycles]"])
    assert 1.0 <= avg < 1.001  # paper: ~1.0002
    assert int(metrics["stalls"]) >= 1  # the scripted Fig. 7 stall
