"""Engine bench: compiled backends versus the legacy interpreter.

Runs the same random vectors through the legacy per-gate interpreter and
every registered engine backend, checks the outputs are bit-identical,
and writes ``results/BENCH_engine.json`` with vectors/second per backend
per bitwidth.  The acceptance bar for this repository is the compiled
``numpy`` backend at >= 5x the interpreter on the 64-bit ACA with one
million vectors.

Override the sweep via ``REPRO_BENCH_ENGINE_WIDTHS`` (comma list) and
``REPRO_BENCH_ENGINE_VECTORS`` (vectors at width 64; other widths are
scaled down to keep the run short).
"""

import os
import time

import numpy as np

from conftest import env_widths
from repro.analysis import choose_window
from repro.circuit import random_stimulus, simulate_interpreted
from repro.core import build_aca
from repro.engine import RunContext, available_backends, execute
from repro.reporting import save_json

DEFAULT_VECTORS = 1 << 20


def _vectors_for(width: int, base: int) -> int:
    # Full volume at the acceptance width, smaller elsewhere so the
    # whole sweep stays interactive.
    return base if width == 64 else max(1 << 14, base // 16)


def _throughput(fn, vectors: int):
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    return out, vectors / dt, dt


def test_engine_throughput_vs_legacy(report):
    base = int(os.environ.get("REPRO_BENCH_ENGINE_VECTORS", DEFAULT_VECTORS))
    widths = env_widths("REPRO_BENCH_ENGINE_WIDTHS", (16, 64, 256))
    results = {"vectors_per_second": {}, "speedup_vs_legacy": {},
               "vectors": {}, "identical_outputs": True}
    lines = ["engine throughput (Mvec/s)",
             "width  " + "  ".join(f"{b:>10}" for b in
                                   ["legacy"] + list(available_backends()))]

    for width in widths:
        n = _vectors_for(width, base)
        circuit = build_aca(width, choose_window(width))
        stim = random_stimulus(circuit, num_vectors=n,
                               rng=np.random.default_rng(width))
        reference, legacy_rate, _ = _throughput(
            lambda: simulate_interpreted(circuit, stim, num_vectors=n), n)
        per_backend = {"legacy": legacy_rate}
        for name in available_backends():
            ctx = RunContext(seed=0, backend=name)
            out, rate, _ = _throughput(
                lambda: execute(circuit, stim, num_vectors=n,
                                backend=name, ctx=ctx), n)
            if out != reference:
                results["identical_outputs"] = False
            per_backend[name] = rate
        key = str(width)
        results["vectors"][key] = n
        results["vectors_per_second"][key] = {
            k: round(v, 1) for k, v in per_backend.items()}
        results["speedup_vs_legacy"][key] = {
            k: round(v / legacy_rate, 2) for k, v in per_backend.items()
            if k != "legacy"}
        lines.append(f"{width:>5}  " + "  ".join(
            f"{per_backend[k] / 1e6:>10.2f}"
            for k in ["legacy"] + list(available_backends())))

    path = save_json("BENCH_engine.json", results)
    report("BENCH_engine.txt", "\n".join(lines) + f"\n[json: {path}]")

    assert results["identical_outputs"], "backend outputs diverged"
    if 64 in widths and base >= DEFAULT_VECTORS:
        assert results["speedup_vs_legacy"]["64"]["numpy"] >= 5.0
