"""Engine throughput — back-compat shim over the ``engine`` bench suite.

The measurement itself moved to :mod:`repro.bench.suites.engine`
(declarative registry + calibrated runner + shared result schema).
This pytest entry point survives so ``pytest benchmarks/`` keeps
regenerating ``results/BENCH_engine.json`` and enforcing the
repository's acceptance bar: compiled backends bit-identical to the
interpreter (checked at suite setup) and, at full volume, the numpy
backend >= 5x the interpreter at width 64.

``REPRO_BENCH_ENGINE_VECTORS`` / ``REPRO_BENCH_ENGINE_WIDTHS``
override the sweep, as before.
"""

import os

from repro.bench import (RunnerConfig, build_payload, load_builtin_suites,
                         registry, run_benchmark, validate_payload,
                         write_suite_result)

FULL_SPEEDUP_BAR = 5.0
FULL_VECTORS = 1 << 18


def test_engine_throughput_vs_legacy(show):
    load_builtin_suites()
    config = RunnerConfig()
    results = [run_benchmark(b, config)
               for b in registry.build("engine", "small")]
    payload = build_payload("engine", "small", results, config)
    validate_payload(payload)
    path = write_suite_result(payload)

    by_name = {r.name: r for r in results}
    lines = ["engine throughput (unified harness)",
             f"{'benchmark':<20} {'Mops/s':>10}"]
    for r in results:
        lines.append(f"{r.name:<20} {r.ops_per_second / 1e6:>10.2f}")
    lines.append(f"[json: {path}]")
    show("\n".join(lines))

    assert all(not r.band_violations for r in results)
    # The 5x acceptance bar needs full vector volume; enforce it only
    # when the caller asked for it (nightly / explicit override).
    base = int(os.environ.get("REPRO_BENCH_ENGINE_VECTORS", 0))
    if base >= FULL_VECTORS and "numpy_w64" in by_name:
        speedup = (by_name["numpy_w64"].ops_per_second
                   / by_name["legacy_w64"].ops_per_second)
        assert speedup >= FULL_SPEEDUP_BAR, (
            f"numpy backend only {speedup:.1f}x the interpreter")
