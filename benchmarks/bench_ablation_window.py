"""Experiment ABL — window-size ablation at 1024 bits: the
accuracy/delay/area trade-off behind the paper's 99.99 % design point."""

from repro import experiments as ex
from repro.circuit import UMC180, analyze_timing
from repro.core import build_vlsa_datapath


def test_vlsa_datapath_kernel(benchmark):
    circuit = build_vlsa_datapath(256)
    benchmark(analyze_timing, circuit, UMC180)


def test_window_sweep(report, benchmark):
    table = benchmark.pedantic(ex.window_sweep, kwargs={"width": 1024},
                               rounds=1, iterations=1)
    report("ablation_window.txt", table.render())
    rows = [(int(r[0]), float(r[1]), float(r[3]), float(r[5]))
            for r in table.rows]
    # Error probability falls monotonically with window size ...
    p_errs = [p for _, p, _, _ in rows]
    assert p_errs == sorted(p_errs, reverse=True)
    # ... while ACA delay rises (log-like) with window size.
    delays = [d for _, _, d, _ in rows]
    assert delays == sorted(delays)
    # The paper's design point (99.99% window) maximises the average
    # VLSA speedup within a few percent across this sweep.
    from repro.analysis import choose_window
    by_window = {w: s for w, _, _, s in rows}
    w_star = choose_window(1024)
    assert by_window[w_star] >= 0.9 * max(by_window.values())
