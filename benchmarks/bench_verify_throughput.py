"""Verify-oracle throughput — back-compat shim over the ``verify``
bench suite.

The measurement moved to :mod:`repro.bench.suites.verify`; this pytest
entry point keeps ``pytest benchmarks/`` regenerating
``results/BENCH_verify.json`` (shared schema) and asserting every
benchmarked differential run stays mismatch-free.

``REPRO_BENCH_VERIFY_VECTORS`` overrides the volume, as before.
"""

from repro.bench import (RunnerConfig, build_payload, load_builtin_suites,
                         registry, run_benchmark, validate_payload,
                         write_suite_result)


def test_verify_throughput(show):
    load_builtin_suites()
    config = RunnerConfig()
    results = [run_benchmark(b, config)
               for b in registry.build("verify", "small")]
    payload = build_payload("verify", "small", results, config)
    validate_payload(payload)
    path = write_suite_result(payload)

    lines = ["verify oracle throughput (unified harness)",
             f"{'benchmark':<28} {'kvec/s':>10}"]
    for r in results:
        lines.append(f"{r.name:<28} {r.ops_per_second / 1e3:>10.1f}")
    lines.append(f"[json: {path}]")
    show("\n".join(lines))

    for r in results:
        assert not r.band_violations, (r.name, r.band_violations)
        if "mismatches" in r.metrics:
            assert r.metrics["mismatches"] == 0, (
                f"{r.name}: verification mismatches during benchmark")
