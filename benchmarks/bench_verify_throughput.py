"""Verification bench: oracle throughput per implementation pair.

Measures how many vectors/second the differential verifier pushes
through each registered implementation (reference computation included),
plus the cost of the pure reference oracle itself — the number that
bounds how large a nightly fuzz run can be.  Writes
``results/BENCH_verify.json``.

Override via ``REPRO_BENCH_VERIFY_VECTORS`` (default 20k; gate-level
implementations get a scaled-down share so the sweep stays interactive)
and ``REPRO_BENCH_VERIFY_WIDTHS`` (comma list, default ``32,64``).
"""

import os
import time

from conftest import env_widths
from repro.analysis import choose_window
from repro.engine import RunContext
from repro.reporting import save_json
from repro.verify import DifferentialVerifier, default_implementations
from repro.verify.differential import _reference
from repro.verify.vectors import pair_stream

DEFAULT_VECTORS = 20000

#: Gate-level implementations are orders of magnitude slower than the
#: word-level ones; they get a reduced share so the bench stays short.
_GATE_LEVEL = ("engine:", "interpreter")


def _vectors_for(impl: str, base: int) -> int:
    if impl.startswith(_GATE_LEVEL[0]) or impl == _GATE_LEVEL[1]:
        return max(256, base // 64)
    return base


def test_verify_throughput(report):
    base = int(os.environ.get("REPRO_BENCH_VERIFY_VECTORS", DEFAULT_VECTORS))
    widths = env_widths("REPRO_BENCH_VERIFY_WIDTHS", (32, 64))
    results = {"vectors_per_second": {}, "vectors": {}, "all_clean": True}
    lines = ["verify oracle throughput (kvec/s)"]

    for width in widths:
        window = choose_window(width)
        per_impl = {}

        # The reference oracle alone (the floor every pair pays).
        pairs = [p for chunk in pair_stream("uniform", width, window,
                                            base, seed=width)
                 for p in chunk]
        t0 = time.perf_counter()
        _reference(pairs, width, window)
        per_impl["reference"] = base / (time.perf_counter() - t0)

        for impl in default_implementations(width):
            n = _vectors_for(impl, base)
            verifier = DifferentialVerifier(
                width, window=window, impls=(impl,),
                ctx=RunContext(seed=width), shrink=False)
            t0 = time.perf_counter()
            rep = verifier.run(vectors=n, streams=("uniform",), seed=width)
            dt = time.perf_counter() - t0
            if not rep.ok:
                results["all_clean"] = False
            per_impl[impl] = n / dt

        key = str(width)
        results["vectors"][key] = base
        results["vectors_per_second"][key] = {
            k: round(v, 1) for k, v in per_impl.items()}
        lines.append(f"\nwidth {width} (window {window}):")
        lines.extend(f"  {name:<16} {rate / 1e3:>10.1f}"
                     for name, rate in sorted(per_impl.items(),
                                              key=lambda kv: -kv[1]))

    path = save_json("BENCH_verify.json", results)
    report("BENCH_verify.txt", "\n".join(lines) + f"\n[json: {path}]")
    assert results["all_clean"], "verification mismatches during benchmark"
