"""Experiment FLT — stuck-at fault study: the VLSA error flag is not a
manufacturing-fault detector (contrast with the Razor-style work the
paper cites in Section 2)."""

from repro import experiments as ex
from repro.circuit import fault_coverage
from repro.core import build_vlsa_datapath


def test_fault_simulation_kernel(benchmark):
    circuit = build_vlsa_datapath(8, 3)
    report = benchmark(fault_coverage, circuit, 64)
    assert 0.0 < report.coverage <= 1.0


def test_fault_table(report, benchmark):
    table = benchmark.pedantic(ex.fault_table,
                               kwargs={"width": 12, "window": 4,
                                       "vectors": 256},
                               rounds=1, iterations=1)
    report("fault_study.txt", table.render())
    cov = {row[0]: float(row[3]) for row in table.rows}
    assert cov["err flag only"] < cov["sum_exact only"]
    assert cov["all outputs"] >= cov["sum_exact only"]
    assert cov["all outputs"] > 0.9
