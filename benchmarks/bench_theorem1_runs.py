"""Experiment TH1 — Theorem 1: E[flips to k heads] = 2^(k+1) - 2."""

import numpy as np

from repro import experiments as ex
from repro.analysis import (
    expected_flips_closed_form,
    expected_flips_linear_solve,
    expected_flips_monte_carlo,
)


def test_theorem1(benchmark, report):
    solved = benchmark(expected_flips_linear_solve, 24)
    assert solved == expected_flips_closed_form(24)
    table = ex.theorem1(max_k=12, mc_trials=3000)
    report("theorem1.txt", table.render())


def test_theorem1_monte_carlo(benchmark):
    rng = np.random.default_rng(0)
    estimate = benchmark(expected_flips_monte_carlo, 6, 500, rng)
    exact = expected_flips_closed_form(6)  # 126
    assert abs(estimate - exact) / exact < 0.25
