"""Experiment ABL-M — calibration robustness: do the paper's qualitative
conclusions survive changes to the delay-model coefficients?

DESIGN.md documents the two calibration knobs of the umc180 model
(fanout-load and wire-span coefficients).  This ablation re-runs the
Fig. 8 comparison at 256 bits under light/default/heavy interconnect
models and asserts the *shape* claims hold in every regime: the ACA is
fastest, the detector is cheaper than the traditional adder, recovery is
the same order as the traditional adder.
"""

import pytest

from repro.adders import evaluate_candidates
from repro.analysis import choose_window
from repro.circuit import UMC180, analyze_timing
from repro.core import build_aca, build_error_detector, build_recovery_adder
from repro.reporting import Table

WIDTH = 256

MODELS = {
    "gate-only (no load/wire)": (0.0, 0.0),
    "light interconnect": (0.012, 0.0002),
    "default (umc180)": (UMC180.fanout_delay, UMC180.wire_delay_per_bit),
    "heavy interconnect": (0.05, 0.0012),
}


def _characterise(fanout_delay, wire):
    lib = UMC180.with_wire_model(fanout_delay, wire)
    window = choose_window(WIDTH)
    best = min(evaluate_candidates(WIDTH, lib), key=lambda r: r.delay)
    aca = analyze_timing(build_aca(WIDTH, window), lib).critical_delay
    det = analyze_timing(build_error_detector(WIDTH, window),
                         lib).critical_delay
    rec = analyze_timing(build_recovery_adder(WIDTH, window),
                         lib).critical_delay
    return best, aca, det, rec


def test_model_ablation(report, benchmark):
    def sweep():
        rows = []
        for name, (fo, wire) in MODELS.items():
            best, aca, det, rec = _characterise(fo, wire)
            rows.append((name, best.name, best.delay, aca, det, rec))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        f"Delay-model ablation at {WIDTH} bits "
        "(fanout-load / wire-span coefficients)",
        ["model", "best traditional", "trad [ns]", "ACA [ns]",
         "detect [ns]", "recovery [ns]", "speedup", "det/trad"])
    for name, arch, trad, aca, det, rec in rows:
        table.add_row(name, arch, round(trad, 3), round(aca, 3),
                      round(det, 3), round(rec, 3),
                      round(trad / aca, 2), round(det / trad, 2))
    report("ablation_model.txt", table.render())

    for name, arch, trad, aca, det, rec in rows:
        # Shape claims hold in every interconnect regime.
        assert aca < trad, name
        assert det < trad, name
        assert 0.8 < rec / trad < 2.0, name
    # Heavier interconnect helps the bounded-window ACA relatively more.
    speedups = [trad / aca for _, _, trad, aca, _, _ in rows]
    assert speedups[-1] > speedups[0]
