"""Experiment F8 — paper Fig. 8: delay and area of traditional adder,
ACA, error detection and ACA+recovery over 64..2048 bits.

The sweep builds and characterises every circuit once per session; the
``benchmark`` entries time the representative kernels (construction and
STA at 256 bits).  Set ``REPRO_FIG8_WIDTHS=64,128`` for a quick run.
"""

import pytest

from conftest import env_widths
from repro import experiments as ex
from repro.circuit import UMC180, analyze_timing
from repro.core import build_aca

WIDTHS = env_widths("REPRO_FIG8_WIDTHS", ex.DEFAULT_BITWIDTHS)


@pytest.fixture(scope="module")
def fig8_rows():
    return ex.fig8_rows(bitwidths=WIDTHS)


def test_fig8_build_aca_kernel(benchmark):
    benchmark(build_aca, 256, 21)


def test_fig8_sta_kernel(benchmark):
    circuit = build_aca(256, 21)
    benchmark(analyze_timing, circuit, UMC180)


def test_fig8_delay_and_area(fig8_rows, report, benchmark):
    delay, area, chart_d, chart_a = benchmark.pedantic(
        ex.fig8_tables, kwargs={"rows": fig8_rows}, rounds=1, iterations=1)
    report("fig8_delay.txt", delay.render() + "\n\n" + chart_d)
    report("fig8_area.txt", area.render() + "\n\n" + chart_a)

    for r in fig8_rows:
        # Paper claims (shape): ACA wins, detector ~2/3, recovery ~1x.
        assert r.aca_speedup > 1.0, r.width
        assert 0.4 <= r.detect_ratio <= 0.95, r.width
        assert 0.9 <= r.recovery_ratio <= 1.6, r.width
        # Area ordering: ripple < ACA < traditional-ish; recovery largest.
        assert r.ripple_area < r.aca_area < r.recovery_area
        assert r.aca_area < r.traditional_area
    # Speedup grows with bitwidth toward the paper's 2.5x end.
    speedups = [r.aca_speedup for r in fig8_rows]
    assert speedups == sorted(speedups)
    if len(WIDTHS) >= 4:
        assert speedups[-1] > 1.5


def test_fig8_vlsa_average_speedup(fig8_rows, report, benchmark):
    """Section 5: on average the VLSA is ~1.5-2x a traditional adder."""
    from repro.analysis import detector_flag_probability
    from repro.reporting import Table

    def build_table():
        t = Table("VLSA average speedup (clock = max(ACA, detect) path)",
                  ["bitwidth", "clock [ns]", "P(stall)", "avg speedup"])
        for r in fig8_rows:
            t.add_row(r.width, round(r.vlsa_clock, 3),
                      f"{detector_flag_probability(r.width, r.window):.1e}",
                      round(r.vlsa_avg_speedup, 2))
        return t

    t = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report("fig8_vlsa_speedup.txt", t.render())
    for r in fig8_rows:
        if r.width >= 128:
            assert r.vlsa_avg_speedup > 1.2
