"""Serving bench: a million additions through the VLSA service.

Drives >= 1M uniform additions through :class:`repro.service.VlsaService`
on the numpy executor backend and writes ``results/BENCH_service.json``
with throughput, request-latency quantiles (p50/p95/p99) and stall/error
rates.  The acceptance bar for this repository: the observed mean
latency-in-cycles matches the analytic ``1 + P(error) * recovery_cycles``
within 5 % on the uniform workload.

Smaller biased/adversarial/attack sweeps ride along to fill the
workload-dependence columns (the adversarial stream must pin mean
latency at exactly ``1 + recovery``).

Override the volume via ``REPRO_BENCH_SERVICE_OPS`` (default ``1 << 20``;
satellite workloads run at 1/16 volume).
"""

import os

import pytest

from repro.engine import RunContext
from repro.reporting import save_json
from repro.service import run_loadgen

DEFAULT_OPS = 1 << 20


def _row(report):
    return {
        "workload": report.workload,
        "width": report.width,
        "window": report.window,
        "backend": report.backend,
        "ops": report.ops,
        "wall_seconds": round(report.wall_seconds, 4),
        "adds_per_second": round(report.adds_per_second, 1),
        "mean_latency_cycles": report.mean_latency_cycles,
        "analytic_latency_cycles": report.analytic_latency_cycles,
        "stall_rate": report.stall_rate,
        "analytic_stall_rate": report.analytic_stall_rate,
        "spec_error_rate": report.spec_error_rate,
        "p50_wall_ms": round(report.p50_wall_ms, 4),
        "p95_wall_ms": round(report.p95_wall_ms, 4),
        "p99_wall_ms": round(report.p99_wall_ms, 4),
        "rejected": report.rejected,
        "timeouts": report.timeouts,
        "retries": report.retries,
        "queue_depth_peak": report.queue_depth_peak,
    }


def test_service_throughput_million_ops(report):
    ops = int(os.environ.get("REPRO_BENCH_SERVICE_OPS", DEFAULT_OPS))
    side_ops = max(1 << 12, ops // 16)

    main = run_loadgen("uniform", ops=ops, width=64, chunk=4096,
                       concurrency=4, max_batch_ops=1 << 14,
                       backend="numpy", ctx=RunContext(seed=1))
    # Acceptance: mean latency within 5% of 1 + P(error) * recovery.
    assert main.backend == "numpy"
    assert main.ops == ops
    assert main.mean_latency_cycles == pytest.approx(
        main.analytic_latency_cycles, rel=0.05)
    assert main.rejected == 0 and main.timeouts == 0

    adversarial = run_loadgen("adversarial", ops=side_ops, width=64,
                              chunk=2048, ctx=RunContext(seed=2))
    assert adversarial.mean_latency_cycles == pytest.approx(2.0)

    biased = run_loadgen("biased", ops=side_ops, width=64, window=12,
                         alpha=0.75, chunk=2048, ctx=RunContext(seed=3))
    attack = run_loadgen("attack", ops=side_ops, chunk=2048,
                         ctx=RunContext(seed=4))

    rows = [_row(r) for r in (main, adversarial, biased, attack)]
    payload = {
        "acceptance": {
            "ops": ops,
            "mean_latency_cycles": main.mean_latency_cycles,
            "analytic_latency_cycles": main.analytic_latency_cycles,
            "relative_error": abs(main.mean_latency_cycles
                                  - main.analytic_latency_cycles)
            / main.analytic_latency_cycles,
            "tolerance": 0.05,
        },
        "workloads": rows,
    }
    path = save_json("BENCH_service.json", payload)

    header = (f"{'workload':<12} {'ops':>9} {'Madds/s':>8} "
              f"{'mean lat':>9} {'analytic':>9} {'stall':>10} "
              f"{'p99 ms':>8}")
    lines = ["service throughput (VlsaService, micro-batched)", header]
    for row in rows:
        ana = ("n/a" if row["analytic_latency_cycles"] is None
               else f"{row['analytic_latency_cycles']:.6f}")
        lines.append(
            f"{row['workload']:<12} {row['ops']:>9} "
            f"{row['adds_per_second'] / 1e6:>8.2f} "
            f"{row['mean_latency_cycles']:>9.6f} {ana:>9} "
            f"{row['stall_rate']:>10.3e} {row['p99_wall_ms']:>8.3f}")
    lines.append(f"[json: {path}]")
    report("BENCH_service.txt", "\n".join(lines))
