"""Service throughput — back-compat shim over the ``service`` bench
suite.

The measurement moved to :mod:`repro.bench.suites.service`; this
pytest entry point keeps ``pytest benchmarks/`` regenerating
``results/BENCH_service.json`` (shared schema, bootstrap CIs) and
enforcing the paper-level acceptance bars as hard assertions:

* uniform mean latency-in-cycles within 5 % of the analytic
  ``1 + P(stall) * recovery`` prediction,
* the adversarial stream pinned at exactly ``1 + recovery`` cycles,
* the window-8 detector stall rate inside its 15 % band.

``REPRO_BENCH_SERVICE_OPS`` overrides the volume, as before.
"""

from repro.bench import (RunnerConfig, build_payload, load_builtin_suites,
                         registry, run_benchmark, validate_payload,
                         write_suite_result)


def test_service_throughput_paper_metrics(show):
    load_builtin_suites()
    config = RunnerConfig()
    results = [run_benchmark(b, config)
               for b in registry.build("service", "small")]
    payload = build_payload("service", "small", results, config)
    validate_payload(payload)
    path = write_suite_result(payload)

    lines = ["service throughput (unified harness)",
             f"{'benchmark':<28} {'Madds/s':>8} {'mean lat':>10} "
             f"{'analytic':>10} {'stall':>10}"]
    for r in results:
        m = r.metrics
        ana = m.get("analytic_latency_cycles")
        lines.append(
            f"{r.name:<28} {r.ops_per_second / 1e6:>8.2f} "
            f"{m['mean_latency_cycles']:>10.6f} "
            f"{'n/a' if ana is None else format(ana, '>10.6f')} "
            f"{m['stall_rate']:>10.3e}")
    lines.append(f"[json: {path}]")
    show("\n".join(lines))

    # Every paper-metric band is a hard acceptance bar here.
    for r in results:
        assert not r.band_violations, (r.name, r.band_violations)
        assert r.metrics["rejected"] == 0
        assert r.metrics["timeouts"] == 0
