"""Experiment ERR — error probabilities: exact DP, detector bound,
Monte Carlo cross-check (supports Sections 3.1/4.3)."""

from conftest import env_widths
from repro import experiments as ex
from repro.analysis import aca_error_probability, choose_window
from repro.mc import sample_error_rate

WIDTHS = env_widths("REPRO_ERR_WIDTHS", (64, 128, 256, 512, 1024))


def test_exact_dp_kernel(benchmark):
    p = benchmark(aca_error_probability, 2048, 24)
    assert 0 < p < 1e-4


def test_monte_carlo_kernel(benchmark):
    rate = benchmark(sample_error_rate, 64, 8, 2000, 0)
    assert 0 <= rate < 0.2


def test_error_rate_table(report, benchmark):
    table = benchmark.pedantic(ex.error_rate_table,
                               kwargs={"bitwidths": WIDTHS,
                                       "samples": 20000},
                               rounds=1, iterations=1)
    report("error_rates.txt", table.render())
    for row in table.rows:
        n, w = int(row[0]), int(row[1])
        assert w == choose_window(n)
        p_err, p_flag = float(row[2]), float(row[3])
        assert p_err <= p_flag <= 1e-4
        latency = float(row[5])
        assert latency < 1.0002  # the paper's average-latency claim
