"""Experiment F3/F4 — the shared-strip construction versus naive
per-window small adders: area and fanout (paper Section 3.2)."""

from conftest import env_widths
from repro import experiments as ex
from repro.core import build_aca, naive_aca_window_products

WIDTHS = env_widths("REPRO_FIG4_WIDTHS", (64, 128, 256, 512))


def test_shared_construction_kernel(benchmark):
    benchmark(build_aca, 512, 22)


def test_naive_construction_kernel(benchmark):
    benchmark(naive_aca_window_products, 512, 22)


def test_sharing_ablation(report, benchmark):
    table = benchmark.pedantic(ex.sharing_ablation,
                               kwargs={"bitwidths": WIDTHS},
                               rounds=1, iterations=1)
    report("fig4_sharing.txt", table.render())
    for row in table.rows:
        n = int(row[0])
        ratio = float(row[4])
        naive_fanout = int(row[8])
        shared_fanout = int(row[7])
        assert ratio > 1.5, n       # sharing saves a lot of logic
        assert shared_fanout <= naive_fanout
    # The gap widens with bitwidth (naive is O(n*w), shared O(n log w)).
    ratios = [float(r[4]) for r in table.rows]
    assert ratios[-1] >= ratios[0]
