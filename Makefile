# Convenience targets for the VLSA reproduction.

PY ?= python

.PHONY: install lint test bench bench-quick examples experiments clean

install:
	pip install -e .

lint:
	ruff check src tests benchmarks examples

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_FIG8_WIDTHS=64,128 REPRO_FIG4_WIDTHS=64 REPRO_ERR_WIDTHS=64 \
	$(PY) -m pytest benchmarks/ --benchmark-only

examples:
	for e in quickstart crypto_attack vlsa_pipeline design_space \
	         speculative_multiplier formal_verification; do \
	    $(PY) examples/$$e.py || exit 1; done

experiments:
	$(PY) -m repro all

clean:
	rm -rf results rtl_out .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
